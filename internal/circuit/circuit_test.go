package circuit

import (
	"bytes"
	"fmt"
	"testing"

	"padico/internal/arbitration"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

type grid struct {
	sim   *vtime.Sim
	net   *simnet.Net
	nodes []*simnet.Node
	arb   *arbitration.Arbiter
	san   *arbitration.Device
	lan   *arbitration.Device
}

// newGrid builds n nodes on both a Myrinet SAN and a Fast-Ethernet LAN.
func newGrid(n int) *grid {
	s := vtime.NewSim()
	net := simnet.New(s)
	g := &grid{sim: s, net: net}
	for i := 0; i < n; i++ {
		g.nodes = append(g.nodes, net.NewNode(fmt.Sprintf("n%d", i)))
	}
	sanFab := net.NewMyrinet2000("myri0", g.nodes)
	lanFab := net.NewEthernet100("eth0", g.nodes)
	g.arb = arbitration.New(net)
	g.san, _ = g.arb.AddSAN(sanFab)
	g.lan, _ = g.arb.AddSock(lanFab)
	return g
}

// openAll opens one circuit endpoint per member concurrently and returns
// them indexed by rank.
func openAll(t *testing.T, g *grid, dev *arbitration.Device, name string, members []*simnet.Node) []*Circuit {
	t.Helper()
	circuits := make([]*Circuit, len(members))
	errs := make([]error, len(members))
	wg := vtime.NewWaitGroup(g.sim, "openAll")
	for i := range members {
		wg.Add(1)
		g.sim.Go("open", func() {
			defer wg.Done()
			var c *Circuit
			var err error
			if dev != nil {
				c, err = OpenOn(g.arb, dev, name, members, i)
			} else {
				c, err = Open(g.arb, name, members, i)
			}
			circuits[i], errs[i] = c, err
		})
	}
	_ = wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("open rank %d: %v", i, err)
		}
	}
	return circuits
}

func exchange(t *testing.T, g *grid, cs []*Circuit) {
	t.Helper()
	n := len(cs)
	wg := vtime.NewWaitGroup(g.sim, "exchange")
	for r := range cs {
		wg.Add(1)
		g.sim.Go("member", func() {
			defer wg.Done()
			c := cs[r]
			// Everyone sends to (rank+1)%n and receives from (rank-1+n)%n.
			payload := bytes.Repeat([]byte{byte(r)}, 100)
			if err := c.Send((r+1)%n, []byte{byte(r)}, payload); err != nil {
				t.Errorf("rank %d send: %v", r, err)
				return
			}
			m, err := c.Recv()
			if err != nil {
				t.Errorf("rank %d recv: %v", r, err)
				return
			}
			want := (r - 1 + n) % n
			if m.Src != want || int(m.Header[0]) != want || len(m.Payload) != 100 {
				t.Errorf("rank %d got src=%d hdr=%v len=%d", r, m.Src, m.Header, len(m.Payload))
			}
		})
	}
	_ = wg.Wait()
}

func TestStraightMappingRing(t *testing.T) {
	g := newGrid(4)
	g.sim.Run(func() {
		defer g.arb.Close()
		cs := openAll(t, g, g.san, "ring", g.nodes)
		if cs[0].Mapping() != "straight" {
			t.Fatalf("mapping = %s", cs[0].Mapping())
		}
		exchange(t, g, cs)
		for _, c := range cs {
			c.Close()
		}
	})
}

func TestCrossParadigmRing(t *testing.T) {
	g := newGrid(4)
	g.sim.Run(func() {
		defer g.arb.Close()
		cs := openAll(t, g, g.lan, "xring", g.nodes)
		if cs[0].Mapping() != "cross-paradigm" {
			t.Fatalf("mapping = %s", cs[0].Mapping())
		}
		exchange(t, g, cs)
		for _, c := range cs {
			c.Close()
		}
	})
}

func TestAutoSelectionPrefersSAN(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		defer g.arb.Close()
		cs := openAll(t, g, nil, "auto", g.nodes)
		if cs[0].Mapping() != "straight" {
			t.Fatalf("auto mapping = %s, want straight (SAN available)", cs[0].Mapping())
		}
		for _, c := range cs {
			c.Close()
		}
	})
}

func TestSelfSend(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		defer g.arb.Close()
		for _, dev := range []*arbitration.Device{g.san, g.lan} {
			cs := openAll(t, g, dev, "self-"+dev.Name, g.nodes)
			c := cs[0]
			if err := c.Send(0, []byte("me"), []byte("self")); err != nil {
				t.Fatalf("%s self send: %v", dev.Name, err)
			}
			m, err := c.Recv()
			if err != nil || m.Src != 0 || string(m.Header) != "me" {
				t.Fatalf("%s self recv = %+v, %v", dev.Name, m, err)
			}
			for _, c := range cs {
				c.Close()
			}
		}
	})
}

func TestMetadataAndBadArgs(t *testing.T) {
	g := newGrid(3)
	g.sim.Run(func() {
		defer g.arb.Close()
		cs := openAll(t, g, g.san, "meta", g.nodes)
		c := cs[1]
		if c.Rank() != 1 || c.Size() != 3 || c.Name() != "meta" {
			t.Fatalf("meta = rank %d size %d name %s", c.Rank(), c.Size(), c.Name())
		}
		if c.Node(2) != g.nodes[2] {
			t.Fatal("Node(2) mismatch")
		}
		if err := c.Send(7, nil, nil); err == nil {
			t.Error("send to rank 7 succeeded")
		}
		if _, err := Open(g.arb, "bad", g.nodes, 9); err == nil {
			t.Error("Open with self=9 succeeded")
		}
		for _, c := range cs {
			c.Close()
		}
	})
}

func TestSubgroupCircuit(t *testing.T) {
	// A circuit over a subset of the grid's nodes with its own rank space.
	g := newGrid(4)
	g.sim.Run(func() {
		defer g.arb.Close()
		members := []*simnet.Node{g.nodes[3], g.nodes[1]} // reversed order on purpose
		cs := openAll(t, g, g.san, "sub", members)
		wg := vtime.NewWaitGroup(g.sim, "x")
		wg.Add(1)
		g.sim.Go("r0", func() {
			defer wg.Done()
			if err := cs[0].Send(1, nil, []byte("to-rank1")); err != nil {
				t.Errorf("send: %v", err)
			}
		})
		m, err := cs[1].Recv()
		if err != nil || m.Src != 0 || string(m.Payload) != "to-rank1" {
			t.Fatalf("recv = %+v, %v", m, err)
		}
		_ = wg.Wait()
		for _, c := range cs {
			c.Close()
		}
	})
}

func TestCrossMappingLargeTransferOrdering(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		defer g.arb.Close()
		cs := openAll(t, g, g.lan, "big", g.nodes)
		const k = 8
		g.sim.Go("sender", func() {
			for i := 0; i < k; i++ {
				payload := bytes.Repeat([]byte{byte(i)}, 10_000)
				if err := cs[0].Send(1, []byte{byte(i)}, payload); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
		})
		for i := 0; i < k; i++ {
			m, err := cs[1].Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if int(m.Header[0]) != i || len(m.Payload) != 10_000 || m.Payload[0] != byte(i) {
				t.Fatalf("message %d corrupt: hdr=%v len=%d", i, m.Header, len(m.Payload))
			}
		}
		for _, c := range cs {
			c.Close()
		}
	})
}

func TestTwoCircuitsCoexistOnOneDevice(t *testing.T) {
	g := newGrid(2)
	g.sim.Run(func() {
		defer g.arb.Close()
		a := openAll(t, g, g.san, "alpha", g.nodes)
		b := openAll(t, g, g.san, "beta", g.nodes)
		g.sim.Go("senders", func() {
			_ = a[0].Send(1, nil, []byte("A"))
			_ = b[0].Send(1, nil, []byte("B"))
		})
		mb, err := b[1].Recv()
		if err != nil || string(mb.Payload) != "B" {
			t.Fatalf("beta recv = %+v, %v", mb, err)
		}
		ma, err := a[1].Recv()
		if err != nil || string(ma.Payload) != "A" {
			t.Fatalf("alpha recv = %+v, %v", ma, err)
		}
		for _, c := range append(a, b...) {
			c.Close()
		}
	})
}

func TestCircuitPortDeterministic(t *testing.T) {
	if circuitPort("x") != circuitPort("x") {
		t.Error("port not deterministic")
	}
	if p := circuitPort("anything"); p < 18000 || p >= 28000 {
		t.Errorf("port %d out of range", p)
	}
}
