package launch

import (
	"bytes"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"padico/internal/deploy"
	"padico/internal/soap"
)

// TestHelperDaemon is not a test: it is the daemon the supervision tests
// spawn. helperExecutor re-execs this test binary with -test.run pinned
// here and the real padico-d arguments after "--"; the env guard keeps a
// normal test run from ever entering daemon mode.
func TestHelperDaemon(t *testing.T) {
	if os.Getenv("PADICO_LAUNCH_HELPER") != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Exit(DaemonMain(args, os.Stdout, os.Stderr))
}

// helperExecutor spawns genuine OS processes — this test binary re-execed
// in daemon mode — so kill/restart supervision runs against the real
// thing: real PIDs, real signals, real process exits.
func helperExecutor() *ExecExecutor {
	return &ExecExecutor{
		Prefix: []string{os.Args[0], "-test.run=^TestHelperDaemon$", "--"},
		Env:    []string{"PADICO_LAUNCH_HELPER=1"},
	}
}

// freePorts reserves n distinct loopback ports and releases them for the
// daemons about to bind them.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	out := make([]int, n)
	ls := make([]net.Listener, n)
	for i := range out {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		out[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range ls {
		l.Close()
	}
	return out
}

// syncBuf is a concurrency-safe log sink for supervisor output.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const trioXML = `<grid name="trio">
  <node name="n0" zone="a"/>
  <node name="n1" zone="b"/>
  <node name="n2" zone="b"/>
  <fabric name="eth" kind="ethernet" nodes="n0,n1,n2"/>
</grid>`

// trioPlan plans the canonical 3-node/2-zone test grid on free loopback
// ports, soap on n2, fast leases so supervision outcomes show quickly.
func trioPlan(t *testing.T) *Plan {
	t.Helper()
	topo, err := deploy.ParseTopology([]byte(trioXML))
	if err != nil {
		t.Fatal(err)
	}
	ports := freePorts(t, 3)
	plan, err := BuildPlan(topo, PlanOptions{
		Ports:        map[string]int{"n0": ports[0], "n1": ports[1], "n2": ports[2]},
		ExtraModules: map[string][]string{"n2": {"soap"}},
		LeaseTTL:     750 * time.Millisecond,
		SyncInterval: 75 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func testOptions(log io.Writer) Options {
	return Options{
		Out:            log,
		ReadyTimeout:   20 * time.Second,
		BackoffMin:     50 * time.Millisecond,
		BackoffMax:     time.Second,
		StableAfter:    10 * time.Second,
		ProbeInterval:  100 * time.Millisecond,
		ProbeFailLimit: 3,
		Grace:          3 * time.Second,
	}
}

func statusOf(t *testing.T, sup *Supervisor, node string) NodeStatus {
	t.Helper()
	for _, st := range sup.Status() {
		if st.Node == node {
			return st
		}
	}
	t.Fatalf("no status for %s", node)
	return NodeStatus{}
}

// TestLaunchSuperviseHeal is the subsystem's acceptance scenario end to
// end: padico-launch boots a 3-daemon grid from grid XML on loopback with
// zero manual flags, an operator attaches through one endpoint, then one
// daemon's OS process is SIGKILLed — the supervisor restarts it with
// backoff, the restarted daemon re-announces under a fresh lease, by-name
// resolution from the attached seat recovers, and status reports the
// restart. Finally the teardown is clean (children reaped).
func TestLaunchSuperviseHeal(t *testing.T) {
	plan := trioPlan(t)
	if got := strings.Join(plan.Registries, ","); got != "n0,n1" {
		t.Fatalf("planned registries = %s, want n0,n1 (first node of each zone)", got)
	}

	var log syncBuf
	sup := NewSupervisor(plan, helperExecutor(), testOptions(&log))
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if err := sup.WaitReady(20 * time.Second); err != nil {
		t.Fatalf("%v\nlog:\n%s", err, log.String())
	}

	// Attach the way an operator would: one endpoint, no other flags.
	dep, err := deploy.Attach(plan.Endpoints()[:1])
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	dep.Registry().SetCacheTTL(0)
	waitFor(t, "all three daemons in the registry", 10*time.Second, func() bool {
		entries, err := dep.Registry().Lookup("module", "vlink")
		return err == nil && len(entries) == 3
	})

	// The planned grid serves by name: dial n2's soap through its gateway.
	waitFor(t, "soap:sys resolvable by name", 10*time.Second, func() bool {
		st, err := dep.DialService("vlink", "soap:sys")
		if err != nil {
			return false
		}
		defer st.Close()
		answer, err := soap.Call(st, "echo", "launched")
		return err == nil && len(answer) == 1 && answer[0] == "launched"
	})

	// Crash n2's OS process the hard way. No withdraw happens — this is
	// the lease-expiry path — and the supervisor must notice the exit,
	// back off, respawn, and see the fresh announce.
	before := statusOf(t, sup, "n2")
	if before.PID <= 0 {
		t.Fatalf("n2 status has no pid: %+v", before)
	}
	if err := syscall.Kill(before.PID, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "supervised restart of n2", 15*time.Second, func() bool {
		st := statusOf(t, sup, "n2")
		return st.Restarts >= 1 && st.State == StateRunning && st.PID > 0 && st.PID != before.PID
	})
	after := statusOf(t, sup, "n2")
	if !strings.Contains(after.LastExit, "killed") {
		t.Fatalf("n2 last exit = %q, want a SIGKILL record", after.LastExit)
	}

	// Fresh lease: the supervisor's own sweep marks n2 announced again,
	// and the attached seat sees a leased (TTL-carrying) record.
	waitFor(t, "n2 re-announced under a fresh lease", 15*time.Second, func() bool {
		if !statusOf(t, sup, "n2").Announced {
			return false
		}
		entries, err := dep.Registry().Lookup("module", "vlink")
		if err != nil {
			return false
		}
		for _, e := range entries {
			if e.Node == "n2" && e.TTLMillis > 0 {
				return true
			}
		}
		return false
	})

	// By-name resolution from the attached seat recovers: soap rides on
	// the restarted daemon, rediscovered through the replicated registry.
	waitFor(t, "by-name resolution to recover", 15*time.Second, func() bool {
		st, err := dep.DialService("vlink", "soap:sys")
		if err != nil {
			return false
		}
		defer st.Close()
		answer, err := soap.Call(st, "echo", "healed")
		return err == nil && len(answer) == 1 && answer[0] == "healed"
	})
	if err := dep.Ctl.Ping("n2"); err != nil {
		t.Fatalf("ping restarted n2: %v", err)
	}

	// Teardown reaps every child.
	pids := make([]int, 0, 3)
	for _, st := range sup.Status() {
		if st.PID > 0 {
			pids = append(pids, st.PID)
		}
	}
	sup.Stop()
	for _, st := range sup.Status() {
		if st.State != StateStopped {
			t.Fatalf("after Stop, %s is %s", st.Node, st.State)
		}
	}
	for _, pid := range pids {
		// The children were direct children and Stop waited on them, so
		// the PIDs are reaped: signalling must fail.
		if err := syscall.Kill(pid, syscall.Signal(0)); err == nil {
			t.Fatalf("child %d still alive after Stop", pid)
		}
	}
}

// TestRollingRestartZone rolls zone b (n1, n2) one node at a time: both
// come back with new PIDs and bumped restart counts, zone a's daemon is
// untouched, and the grid never loses more than one daemon to the roll.
func TestRollingRestartZone(t *testing.T) {
	plan := trioPlan(t)
	var log syncBuf
	sup := NewSupervisor(plan, helperExecutor(), testOptions(&log))
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if err := sup.WaitReady(20 * time.Second); err != nil {
		t.Fatalf("%v\nlog:\n%s", err, log.String())
	}

	pidBefore := map[string]int{}
	for _, st := range sup.Status() {
		pidBefore[st.Node] = st.PID
	}
	if err := sup.RestartNodes(plan.ZoneNodes("b"), 30*time.Second); err != nil {
		t.Fatalf("rolling restart: %v\nlog:\n%s", err, log.String())
	}
	for _, node := range []string{"n1", "n2"} {
		st := statusOf(t, sup, node)
		if st.State != StateRunning || st.Restarts != 1 || st.PID == pidBefore[node] {
			t.Fatalf("%s after roll = %+v (pid before %d)", node, st, pidBefore[node])
		}
		// A rolling restart is the clean path: SIGTERM, withdraw, exit 0.
		if st.LastExit != "exit status 0" {
			t.Fatalf("%s rolled uncleanly: %q", node, st.LastExit)
		}
	}
	if st := statusOf(t, sup, "n0"); st.Restarts != 0 || st.PID != pidBefore["n0"] {
		t.Fatalf("zone a's n0 was disturbed by zone b's roll: %+v", st)
	}
}

// TestRefusalIsNotRestarted: a daemon that exits with ExitRefused (bad
// configuration) is a permanent failure — the supervisor reports it and
// gives up instead of hammering respawns that refuse identically.
func TestRefusalIsNotRestarted(t *testing.T) {
	plan := &Plan{
		Grid:       "bad",
		Registries: []string{"x"},
		Specs: []NodeSpec{{
			Node: "x", Addr: "127.0.0.1:1",
			Args: []string{"-node", ""}, // missing node name: refused
		}},
	}
	var log syncBuf
	sup := NewSupervisor(plan, helperExecutor(), testOptions(&log))
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	waitFor(t, "permanent failure", 10*time.Second, func() bool {
		return statusOf(t, sup, "x").State == StateFailed
	})
	st := statusOf(t, sup, "x")
	if st.Restarts != 0 {
		t.Fatalf("refused daemon was restarted %d time(s)", st.Restarts)
	}
	if !strings.Contains(st.LastExit, "exit status 2") {
		t.Fatalf("last exit = %q, want exit status 2", st.LastExit)
	}
	if err := sup.WaitReady(time.Second); err == nil {
		t.Fatal("WaitReady succeeded over a failed node")
	}
}

// TestControlProtocol drives a supervised grid through the launcher's TCP
// control endpoint: status, a single-node restart, and down.
func TestControlProtocol(t *testing.T) {
	plan := trioPlan(t)
	var log syncBuf
	sup := NewSupervisor(plan, helperExecutor(), testOptions(&log))
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	downc := make(chan struct{})
	var downOnce sync.Once
	srv, err := ServeControl("127.0.0.1:0", sup, func() { downOnce.Do(func() { close(downc) }) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := sup.WaitReady(20 * time.Second); err != nil {
		t.Fatalf("%v\nlog:\n%s", err, log.String())
	}

	sts, err := ControlStatus(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 || sts[0].Node != "n0" || sts[0].State != StateRunning {
		t.Fatalf("control status = %+v", sts)
	}

	msg, sts, err := ControlRestart(srv.Addr(), "", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "n1") {
		t.Fatalf("restart msg = %q", msg)
	}
	for _, st := range sts {
		if st.Node == "n1" && st.Restarts != 1 {
			t.Fatalf("n1 after control restart = %+v", st)
		}
	}

	// Bad requests are refused with errors, not crashes.
	if _, _, err := ControlRestart(srv.Addr(), "nowhere", ""); err == nil {
		t.Fatal("restart of unknown zone succeeded")
	}
	if _, _, err := ControlRestart(srv.Addr(), "a", "n0"); err == nil {
		t.Fatal("restart with both zone and node succeeded")
	}

	if _, err := ControlDown(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-downc:
	case <-time.After(5 * time.Second):
		t.Fatal("down request never triggered the teardown hook")
	}
}

// TestBuildPlan pins the planner's contract: deterministic ports, zone-
// derived registry placement identical to the simulator's, full peer
// seeding, per-node modules, and the validation paths.
func TestBuildPlan(t *testing.T) {
	topo, err := deploy.ParseTopology([]byte(trioXML))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(topo, PlanOptions{
		BasePort:     8800,
		Modules:      []string{"hla"},
		ExtraModules: map[string][]string{"n2": {"soap"}},
		LeaseTTL:     2 * time.Second,
		SyncInterval: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(plan.Nodes(), ","); got != "n0,n1,n2" {
		t.Fatalf("nodes = %s", got)
	}
	if got := strings.Join(plan.Registries, ","); got != "n0,n1" {
		t.Fatalf("registries = %s", got)
	}
	if got := strings.Join(plan.Endpoints(), ","); got != "127.0.0.1:8800,127.0.0.1:8801,127.0.0.1:8802" {
		t.Fatalf("endpoints = %s", got)
	}
	if got := strings.Join(plan.ZoneNodes("b"), ","); got != "n1,n2" {
		t.Fatalf("zone b = %s", got)
	}
	n2, ok := plan.Spec("n2")
	if !ok {
		t.Fatal("no spec for n2")
	}
	args := strings.Join(n2.Args, " ")
	for _, want := range []string{
		"-node n2", "-zone b", "-listen 127.0.0.1:8802",
		"-registries n0,n1", "-peers n0=127.0.0.1:8800,n1=127.0.0.1:8801",
		"-modules hla,soap", "-lease 2s", "-sync 250ms",
	} {
		if !strings.Contains(args, want) {
			t.Fatalf("n2 args %q missing %q", args, want)
		}
	}
	// Placement agreement with the simulator: BuildPlan and LaunchAll
	// both realize Topology.RegistryPlacement.
	if got := strings.Join(topo.RegistryPlacement(), ","); got != strings.Join(plan.Registries, ",") {
		t.Fatalf("plan registries %v != topology placement %v", plan.Registries, got)
	}

	// Validation paths.
	if _, err := BuildPlan(&deploy.Topology{Name: "empty"}, PlanOptions{}); err == nil {
		t.Fatal("empty grid planned")
	}
	if _, err := BuildPlan(topo, PlanOptions{Registries: []string{"ghost"}}); err == nil {
		t.Fatal("unknown registry host planned")
	}
	if _, err := BuildPlan(topo, PlanOptions{Ports: map[string]int{"n0": 9000, "n1": 9000}}); err == nil {
		t.Fatal("colliding endpoints planned")
	}
	// Registry override lands in every daemon's flags.
	plan, err = BuildPlan(topo, PlanOptions{Registries: []string{"n2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(plan.Registries, ","); got != "n2" {
		t.Fatalf("override registries = %s", got)
	}
}

// TestExecutorTemplate pins the placeholder expansion remote command
// templates rely on.
func TestExecutorTemplate(t *testing.T) {
	e := &ExecExecutor{Prefix: []string{"ssh", "{host}", "padico-d-{node}", "{addr}", "p{port}"}}
	spec := NodeSpec{Node: "n1", Addr: "10.0.0.7:7711"}
	got := e.Describe(spec, []string{"-node", "n1"})
	want := "ssh 10.0.0.7 padico-d-n1 10.0.0.7:7711 p7711 -node n1"
	if got != want {
		t.Fatalf("expanded command = %q, want %q", got, want)
	}
}

// TestParseReady pins the readiness-line contract between DaemonMain and
// the supervisor.
func TestParseReady(t *testing.T) {
	node, addr, ok := ParseReady("padico-d: n0 serving on 127.0.0.1:7710 (registries n0,n1)")
	if !ok || node != "n0" || addr != "127.0.0.1:7710" {
		t.Fatalf("ParseReady = %q %q %v", node, addr, ok)
	}
	for _, line := range []string{
		"", "padico-d: n0 shutting down", "n0 serving on x", "padico-d:  serving on x",
	} {
		if _, _, ok := ParseReady(line); ok {
			t.Fatalf("ParseReady accepted %q", line)
		}
	}
}

// TestDaemonMainExitCodes pins the refusal/runtime split the supervisor's
// restart policy keys on.
func TestDaemonMainExitCodes(t *testing.T) {
	gridFile := func(content string) string {
		t.Helper()
		p := t.TempDir() + "/grid.xml"
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	refusals := [][]string{
		{},                                    // missing -node
		{"-bogus-flag"},                       // unknown flag
		{"-node", "a", "-peers", "malformed"}, // bad peer seed
		{"-node", "a", "-grid", "/does/not/exist.xml"},            // unreadable grid
		{"-node", "ghost", "-grid", gridFile(trioXML)},            // node not in grid
		{"-node", "a", "-grid", gridFile("<grid><node/></grid>")}, // invalid grid
	}
	for _, argv := range refusals {
		var out, errOut bytes.Buffer
		if code := DaemonMain(argv, &out, &errOut); code != ExitRefused {
			t.Fatalf("DaemonMain(%v) = %d, want %d (refused)\nstderr:\n%s",
				argv, code, ExitRefused, errOut.String())
		}
	}

	// A valid configuration that fails at runtime (port already bound)
	// exits ExitRuntime: the supervisor may retry that.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var out, errOut bytes.Buffer
	if code := DaemonMain([]string{"-node", "a", "-listen", l.Addr().String()}, &out, &errOut); code != ExitRuntime {
		t.Fatalf("bound-port DaemonMain = %d, want %d (runtime)\nstderr:\n%s",
			code, ExitRuntime, errOut.String())
	}
}

// TestLineWriter pins line splitting and the readiness callback across
// fragmented writes.
func TestLineWriter(t *testing.T) {
	var got []string
	var buf bytes.Buffer
	w := &lineWriter{dst: &buf, prefix: "[x] ", onLine: func(l string) { got = append(got, l) }}
	for _, chunk := range []string{"hel", "lo\nwor", "ld\n", "tail"} {
		if _, err := io.WriteString(w, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "world" {
		t.Fatalf("lines = %q", got)
	}
	if buf.String() != "[x] hello\n[x] world\n" {
		t.Fatalf("forwarded = %q", buf.String())
	}
}

// TestWedgedDaemonIsHealed: a daemon that stops answering its gatekeeper
// without dying (here: SIGSTOPped, the classic wedged process) is detected
// by consecutive probe failures, killed, and respawned.
func TestWedgedDaemonIsHealed(t *testing.T) {
	topo, err := deploy.ParseTopology([]byte(`<grid name="solo"><node name="s0"/></grid>`))
	if err != nil {
		t.Fatal(err)
	}
	ports := freePorts(t, 1)
	plan, err := BuildPlan(topo, PlanOptions{
		Ports:        map[string]int{"s0": ports[0]},
		LeaseTTL:     750 * time.Millisecond,
		SyncInterval: 75 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var log syncBuf
	// Probes against a stopped process fail only at the 5s handshake
	// deadline, so a low fail limit keeps the heal inside test patience.
	opts := testOptions(&log)
	opts.ProbeFailLimit = 2
	sup := NewSupervisor(plan, helperExecutor(), opts)
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if err := sup.WaitReady(20 * time.Second); err != nil {
		t.Fatalf("%v\nlog:\n%s", err, log.String())
	}

	pid := statusOf(t, sup, "s0").PID
	if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "wedged daemon healed", 60*time.Second, func() bool {
		st := statusOf(t, sup, "s0")
		return st.Restarts >= 1 && st.State == StateRunning && st.PID != pid
	})
	if !strings.Contains(log.String(), "wedged") {
		t.Fatalf("heal not attributed to probing:\n%s", log.String())
	}
}
