package launch

import (
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"padico/internal/deploy"
)

// TestPlanHTTPBase verifies observability planning: with HTTPBase set,
// every node gets an -http listener at base+i in name order, recorded on
// the spec; without it, no daemon serves HTTP.
func TestPlanHTTPBase(t *testing.T) {
	topo, err := deploy.ParseTopology([]byte(trioXML))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(topo, PlanOptions{BasePort: 7900, HTTPBase: 7950})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range plan.Specs {
		want := "127.0.0.1:" + strconv.Itoa(7950+i)
		if spec.HTTPAddr != want {
			t.Fatalf("%s HTTPAddr = %q, want %q", spec.Node, spec.HTTPAddr, want)
		}
		args := strings.Join(spec.Args, " ")
		if !strings.Contains(args, "-http "+want) {
			t.Fatalf("%s args missing -http: %v", spec.Node, spec.Args)
		}
	}
	plain, err := BuildPlan(topo, PlanOptions{BasePort: 7900})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range plain.Specs {
		if spec.HTTPAddr != "" || strings.Contains(strings.Join(spec.Args, " "), "-http") {
			t.Fatalf("%s got an HTTP listener without HTTPBase: %v", spec.Node, spec.Args)
		}
	}
}

// TestSupervisorTelemetryAndEpoch is the supervision observability e2e: the
// probe loop populates per-node probe latency and time-since-ready in the
// status report and the supervisor's own telemetry, and a healed daemon is
// respawned with -epoch so its OWN metrics report the restart generation —
// the counter `padico-ctl top` renders.
func TestSupervisorTelemetryAndEpoch(t *testing.T) {
	plan := trioPlan(t)
	var log syncBuf
	sup := NewSupervisor(plan, helperExecutor(), testOptions(&log))
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if err := sup.WaitReady(20 * time.Second); err != nil {
		t.Fatalf("%v\nlog:\n%s", err, log.String())
	}

	// Probes land: status carries a real round-trip and an uptime, and the
	// supervisor's histogram sees the same probes.
	waitFor(t, "probe fields on n0", 10*time.Second, func() bool {
		st := statusOf(t, sup, "n0")
		return st.LastProbeMillis >= 0 && st.ReadyForMillis > 0
	})
	waitFor(t, "launch.probe histogram samples", 10*time.Second, func() bool {
		snap := sup.Telemetry().Snapshot()
		return snap.Hist("launch.probe").Count > 0
	})
	snap := sup.Telemetry().Snapshot()
	if got := snap.Gauge("launch.restarts"); got != 0 {
		t.Fatalf("launch.restarts = %d before any crash", got)
	}

	// Crash n2; the supervisor heals it and respawns with -epoch 1.
	before := statusOf(t, sup, "n2")
	if err := syscall.Kill(before.PID, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "supervised restart of n2", 15*time.Second, func() bool {
		st := statusOf(t, sup, "n2")
		return st.Restarts >= 1 && st.State == StateRunning && st.PID > 0 && st.PID != before.PID
	})
	waitFor(t, "launch.restarts gauge to catch up", 10*time.Second, func() bool {
		snap := sup.Telemetry().Snapshot()
		return snap.Gauge("launch.restarts") >= 1
	})

	// The respawned daemon's own telemetry carries the generation.
	dep, err := deploy.Attach(plan.Endpoints())
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	waitFor(t, "n2's daemon_restarts gauge via the metrics op", 15*time.Second, func() bool {
		snap, err := dep.Ctl.Metrics("n2")
		return err == nil && snap.Gauge("daemon_restarts") == int64(statusOf(t, sup, "n2").Restarts)
	})
}
