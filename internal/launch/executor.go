package launch

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
)

// Exit is the outcome of one supervised daemon process.
type Exit struct {
	// Code is the process exit code, or -1 when the process was ended by
	// a signal (or never collected cleanly).
	Code int
	// Desc is the human-readable outcome ("exit status 2",
	// "signal: killed", ...).
	Desc string
}

// Refused reports whether the daemon refused its configuration — the one
// outcome the supervisor never retries, because an identical respawn would
// refuse identically.
func (e Exit) Refused() bool { return e.Code == ExitRefused }

func (e Exit) String() string { return e.Desc }

// Proc is one spawned daemon process under supervision.
type Proc interface {
	// PID identifies the OS process (the local one, for a command
	// executor that tunnels to another machine).
	PID() int
	// Signal delivers a signal — SIGTERM for graceful stop.
	Signal(sig os.Signal) error
	// Kill ends the process immediately.
	Kill() error
	// Wait blocks until the process exits and returns the outcome. It
	// must be called exactly once.
	Wait() Exit
}

// Executor spawns daemons. It is the portability seam between "how a grid
// is described" and "how a process appears on a machine": the launcher
// plans argv vectors, the executor decides what wraps them — a plain local
// process, a re-exec of the launcher binary itself, ssh to a real host, or
// (in tests) the test binary re-execed in daemon mode.
type Executor interface {
	// Start launches the daemon for spec with the given padico-d
	// arguments, wiring the child's stdout/stderr to the writers (the
	// supervisor watches stdout for the readiness line).
	Start(spec NodeSpec, args []string, stdout, stderr io.Writer) (Proc, error)
	// Describe renders the command line Start would run, for status
	// output and logs.
	Describe(spec NodeSpec, args []string) string
}

// ExecExecutor runs daemons through os/exec: the full argument vector is
// Prefix (with placeholders expanded per node) followed by the planned
// padico-d arguments. Prefix choices cover the deployment spectrum:
//
//	{"/path/to/padico-d"}                 a padico-d binary, locally
//	{launcher, "__daemon__"}              the launcher re-execing itself
//	{"ssh", "{host}", "padico-d"}         one daemon per real machine
//
// Placeholders in Prefix elements: {node} (node name), {host} and {port}
// (split from the control endpoint), {addr} (the endpoint itself).
type ExecExecutor struct {
	Prefix []string
	// Env entries are appended to the inherited environment.
	Env []string
}

// LocalDaemon returns the executor spawning a padico-d binary locally.
func LocalDaemon(path string) *ExecExecutor {
	return &ExecExecutor{Prefix: []string{path}}
}

func (e *ExecExecutor) argv(spec NodeSpec, args []string) []string {
	host, port, err := net.SplitHostPort(spec.Addr)
	if err != nil {
		host, port = spec.Addr, ""
	}
	r := strings.NewReplacer(
		"{node}", spec.Node,
		"{host}", host,
		"{port}", port,
		"{addr}", spec.Addr,
	)
	out := make([]string, 0, len(e.Prefix)+len(args))
	for _, p := range e.Prefix {
		out = append(out, r.Replace(p))
	}
	return append(out, args...)
}

// Start spawns the daemon process.
func (e *ExecExecutor) Start(spec NodeSpec, args []string, stdout, stderr io.Writer) (Proc, error) {
	argv := e.argv(spec, args)
	if len(argv) == 0 || argv[0] == "" {
		return nil, errors.New("launch: executor has no command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout, cmd.Stderr = stdout, stderr
	if len(e.Env) > 0 {
		cmd.Env = append(os.Environ(), e.Env...)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("launch: spawning %s for %s: %w", argv[0], spec.Node, err)
	}
	return &osProc{cmd: cmd}, nil
}

// Describe renders the expanded command line.
func (e *ExecExecutor) Describe(spec NodeSpec, args []string) string {
	return strings.Join(e.argv(spec, args), " ")
}

// osProc wraps an os/exec child.
type osProc struct{ cmd *exec.Cmd }

func (p *osProc) PID() int                   { return p.cmd.Process.Pid }
func (p *osProc) Signal(sig os.Signal) error { return p.cmd.Process.Signal(sig) }
func (p *osProc) Kill() error                { return p.cmd.Process.Kill() }

func (p *osProc) Wait() Exit {
	err := p.cmd.Wait()
	if err == nil {
		return Exit{Code: 0, Desc: "exit status 0"}
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return Exit{Code: ee.ExitCode(), Desc: ee.String()}
	}
	return Exit{Code: -1, Desc: err.Error()}
}
