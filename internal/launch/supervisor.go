package launch

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"
	"syscall"
	"time"

	"padico/internal/gatekeeper"
	"padico/internal/orb"
	"padico/internal/sockets"
	"padico/internal/telemetry"
	"padico/internal/vtime"
)

// State is one supervised node's lifecycle phase.
type State string

const (
	// StateStarting: spawned, waiting for the readiness line.
	StateStarting State = "starting"
	// StateRunning: ready and (as far as probing knows) healthy.
	StateRunning State = "running"
	// StateBackoff: crashed; waiting out the restart backoff.
	StateBackoff State = "backoff"
	// StateStopping: asked to terminate (shutdown or rolling restart).
	StateStopping State = "stopping"
	// StateStopped: terminated on purpose; not coming back.
	StateStopped State = "stopped"
	// StateFailed: the daemon refused its configuration (ExitRefused);
	// the supervisor gave up on it.
	StateFailed State = "failed"
)

// NodeStatus is one node's supervision report.
type NodeStatus struct {
	Node  string `json:"node"`
	Zone  string `json:"zone,omitempty"`
	Addr  string `json:"addr"`
	State State  `json:"state"`
	// PID of the current child process (0 when none is running).
	PID int `json:"pid"`
	// Restarts counts respawns after the initial launch — crashes healed
	// and operator-requested restarts alike.
	Restarts int `json:"restarts"`
	// LastProbeMillis is the round-trip of the most recent successful
	// gatekeeper health probe (-1 before the first one lands).
	LastProbeMillis int64 `json:"last_probe_ms"`
	// ReadyForMillis is how long the daemon has been running since its last
	// readiness line (0 when not running).
	ReadyForMillis int64 `json:"ready_for_ms"`
	// Announced reports whether the registry currently holds a live,
	// leased record from this node — the evidence that a (re)started
	// daemon re-announced under a fresh lease.
	Announced bool `json:"announced"`
	// LastExit describes the most recent process exit, if any.
	LastExit string `json:"last_exit,omitempty"`
}

// Options tunes the supervisor. Zero values select the defaults noted on
// each field.
type Options struct {
	// Out receives the supervisor's log lines and the children's output,
	// prefixed per node (default: discard).
	Out io.Writer
	// ReadyTimeout bounds how long a spawned daemon may take to print its
	// readiness line before it is killed and retried (default 30s).
	ReadyTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential restart backoff
	// (defaults 200ms and 10s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// StableAfter is the uptime after which a daemon's backoff resets to
	// BackoffMin — it evidently recovered (default 30s).
	StableAfter time.Duration
	// ProbeInterval is the gatekeeper health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeFailLimit is how many consecutive probe failures a running
	// daemon survives before the supervisor declares it wedged and kills
	// it for a restart (default 3).
	ProbeFailLimit int
	// Grace is the SIGTERM-to-SIGKILL window on stop and restart
	// (default 5s).
	Grace time.Duration
	// TraceSample is the supervisor seat's root-span head sampling: 0 (the
	// default) records none, 1 records all, n records one in every n —
	// when enabled, health probes become collectable causal traces.
	TraceSample int
}

// probeTimeout bounds one health-probe exchange. It matches the wall
// handshake deadline, so a wedged daemon costs one probe round the same
// stall whether the probe had to dial or rode a pooled stream.
const probeTimeout = 5 * time.Second

func (o *Options) fill() {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.ReadyTimeout <= 0 {
		o.ReadyTimeout = 30 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 200 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 10 * time.Second
	}
	if o.StableAfter <= 0 {
		o.StableAfter = 30 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeFailLimit <= 0 {
		o.ProbeFailLimit = 3
	}
	if o.Grace <= 0 {
		o.Grace = 5 * time.Second
	}
}

// Supervisor spawns one daemon per planned node and babysits the set: it
// watches stdout for readiness, probes every running gatekeeper, restarts
// crashed (or wedged) daemons with exponential backoff, verifies each
// restarted daemon re-announces into the registry under a fresh lease, and
// tears the grid down cleanly — SIGTERM first, so daemons withdraw their
// registry entries, SIGKILL only after the grace window.
type Supervisor struct {
	plan *Plan
	exec Executor
	opt  Options

	host *sockets.WallHost
	ctl  *gatekeeper.Controller
	rc   *gatekeeper.RegistryClient
	tel  *telemetry.Registry

	nodes map[string]*node
	order []string

	quit      chan struct{}
	probeDone chan struct{}
	wg        sync.WaitGroup

	mu       sync.Mutex
	started  bool
	stopOnce sync.Once
}

// NewSupervisor prepares a supervisor for a plan. Start spawns the grid.
// The node table is built here, before any goroutine exists, so Status and
// restart requests (e.g. through an already-listening control endpoint)
// never race its construction.
func NewSupervisor(plan *Plan, exec Executor, opt Options) *Supervisor {
	opt.fill()
	s := &Supervisor{
		plan:      plan,
		exec:      exec,
		opt:       opt,
		nodes:     make(map[string]*node, len(plan.Specs)),
		quit:      make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	for _, spec := range plan.Specs {
		n := &node{sup: s, spec: spec, cmds: make(chan nodeCmd)}
		n.st = NodeStatus{Node: spec.Node, Zone: spec.Zone, Addr: spec.Addr, State: StateStarting, LastProbeMillis: -1}
		s.nodes[spec.Node] = n
		s.order = append(s.order, spec.Node)
	}
	return s
}

// Start spawns every planned daemon and begins supervising. It returns as
// soon as the children are launched; WaitReady blocks until they serve.
func (s *Supervisor) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("launch: supervisor already started")
	}
	s.started = true
	s.mu.Unlock()

	// The supervisor's own seat on the deployment: a dial-only wall host
	// whose address book pins every planned endpoint (the plan is the
	// authority on where daemons live — registry learning must not move
	// them), a controller for health pings, and a registry client for
	// lease visibility.
	s.host = sockets.NewWallHost("padico-launch")
	for _, spec := range s.plan.Specs {
		s.host.Pin(spec.Node, spec.Addr)
	}
	wall := vtime.NewWall()
	s.tel = telemetry.New("padico-launch", wall)
	s.tel.SetSpanSampling(s.opt.TraceSample)
	s.host.SetTelemetry(s.tel)
	tr := orb.WallTransport{Host: s.host}
	s.ctl = gatekeeper.NewController(wall, tr)
	s.ctl.UseTelemetry(s.tel)
	if len(s.plan.ShardGroups) > 1 {
		s.rc = gatekeeper.NewShardedRegistryClient(wall, tr, s.plan.ShardGroups)
	} else {
		s.rc = gatekeeper.NewRegistryClient(wall, tr, s.plan.Registries...)
	}
	s.rc.UseTelemetry(s.tel)
	s.rc.SetCacheTTL(0)

	s.wg.Add(len(s.order))
	for _, name := range s.order {
		go s.nodes[name].run()
	}
	go s.probeLoop()
	return nil
}

// Status snapshots every node's supervision state, in plan order.
func (s *Supervisor) Status() []NodeStatus {
	out := make([]NodeStatus, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.nodes[name].status())
	}
	return out
}

// WaitReady blocks until every supervised node is running, or fails when
// the timeout passes or a node permanently refuses.
func (s *Supervisor) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var lagging []string
		for _, st := range s.Status() {
			if st.State == StateFailed {
				return fmt.Errorf("launch: node %s failed permanently (%s)", st.Node, st.LastExit)
			}
			if st.State != StateRunning {
				lagging = append(lagging, fmt.Sprintf("%s(%s)", st.Node, st.State))
			}
		}
		if len(lagging) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("launch: grid not ready after %v: %v", timeout, lagging)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// RestartNode gracefully restarts one node: SIGTERM (the daemon withdraws
// its registry entries), respawn, and a wait until it serves again. The
// timeout bounds each phase.
func (s *Supervisor) RestartNode(name string, timeout time.Duration) error {
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("launch: unknown node %q", name)
	}
	// A node whose run loop has ended (refused its config, or already
	// stopped) has no command receiver anymore: fail now instead of
	// blocking the operator for the whole send timeout.
	if st := n.status(); st.State == StateFailed || st.State == StateStopped {
		return fmt.Errorf("launch: %s is %s (%s) — not restartable", name, st.State, st.LastExit)
	}
	done := make(chan error, 1)
	select {
	case n.cmds <- nodeCmd{done: done}:
	case <-time.After(timeout):
		return fmt.Errorf("launch: %s is not accepting commands (state %s)", name, n.status().State)
	}
	select {
	case <-done:
	case <-time.After(timeout):
		return fmt.Errorf("launch: %s did not stop within %v", name, timeout)
	}
	deadline := time.Now().Add(timeout)
	for {
		st := n.status()
		if st.State == StateRunning {
			return nil
		}
		if st.State == StateFailed || st.State == StateStopped {
			return fmt.Errorf("launch: %s did not come back (state %s, %s)", name, st.State, st.LastExit)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("launch: %s not ready %v after restart", name, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// RestartNodes rolls a restart over the named nodes one at a time — each
// node is back up before the next goes down, so a zone never loses more
// than one daemon to the roll.
func (s *Supervisor) RestartNodes(names []string, timeout time.Duration) error {
	for _, n := range names {
		if err := s.RestartNode(n, timeout); err != nil {
			return err
		}
	}
	return nil
}

// Plan returns the plan under supervision.
func (s *Supervisor) Plan() *Plan { return s.plan }

// Telemetry returns the supervisor's own metric registry — probe latency,
// probe failures, and restart/backoff gauges live here (nil before Start).
func (s *Supervisor) Telemetry() *telemetry.Registry { return s.tel }

// Stop tears the grid down: every child gets SIGTERM (a clean daemon
// withdraws from the registry before exiting), stragglers are killed after
// the grace window, and the supervisor's probe loop and seat shut down.
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() {
		close(s.quit)
		s.mu.Lock()
		started := s.started
		s.mu.Unlock()
		if started {
			<-s.probeDone
		}
		s.wg.Wait()
		if s.rc != nil {
			s.rc.Close()
		}
		if s.host != nil {
			s.host.Close()
		}
		s.logf("grid %q down", s.plan.Grid)
	})
}

func (s *Supervisor) logf(format string, args ...any) {
	fmt.Fprintf(s.opt.Out, "padico-launch: "+format+"\n", args...)
}

// probeLoop is the babysitter proper: every interval it pings the
// gatekeeper of each running daemon (a wedged process that still holds its
// port is indistinguishable from a healthy one without this), timing each
// round-trip into the supervisor's telemetry, and sweeps the registry once
// to record which nodes hold a live lease.
func (s *Supervisor) probeLoop() {
	defer close(s.probeDone)
	t := time.NewTicker(s.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
		}
		var targets []string
		var restarts, backoff int64
		for _, name := range s.order {
			st := s.nodes[name].status()
			restarts += int64(st.Restarts)
			if st.State == StateBackoff {
				backoff++
			}
			if st.State == StateRunning {
				targets = append(targets, name)
			}
		}
		s.tel.Gauge("launch.restarts").Set(restarts)
		s.tel.Gauge("launch.backoff_nodes").Set(backoff)
		// Each probe is timed individually — the Fanout helper answers
		// "who is up", but the per-node round-trip is the health signal the
		// status table and launch.probe histogram report.
		var wg sync.WaitGroup
		for _, name := range targets {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				start := s.tel.Now()
				// A bounded probe deadline, not ControlTimeout: a wedged
				// daemon holds its pooled control stream open, and the
				// babysitter must call it dead within the probe cadence —
				// not half a minute later.
				_, err := s.ctl.DoTimeout(name, &gatekeeper.Request{Op: gatekeeper.OpPing}, probeTimeout)
				rtt := s.tel.Since(start)
				if err == nil {
					s.tel.Histogram("launch.probe").Observe(rtt)
				} else {
					s.tel.Counter("launch.probe_failures").Inc()
				}
				s.nodes[name].probeResult(err == nil, rtt.Milliseconds())
			}(name)
		}
		wg.Wait()
		// Every daemon announces its module table (vlink is always
		// loaded), so one filtered lookup reveals who currently holds a
		// live, leased record.
		if entries, err := s.rc.Lookup("module", "vlink"); err == nil {
			live := make(map[string]bool, len(entries))
			for _, e := range entries {
				if e.TTLMillis > 0 {
					live[e.Node] = true
				}
			}
			for _, name := range s.order {
				s.nodes[name].setAnnounced(live[name])
			}
		}
	}
}

// nodeCmd asks a node's run loop to restart its daemon; done is signalled
// once the old process has exited.
type nodeCmd struct{ done chan error }

// node is one supervised daemon's state machine.
type node struct {
	sup  *Supervisor
	spec NodeSpec
	cmds chan nodeCmd

	mu         sync.Mutex
	proc       Proc
	st         NodeStatus
	probeFails int
	readyAt    time.Time
}

func (n *node) status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.st
	if st.State == StateRunning && !n.readyAt.IsZero() {
		st.ReadyForMillis = time.Since(n.readyAt).Milliseconds()
	}
	return st
}

func (n *node) setReadyAt(t time.Time) {
	n.mu.Lock()
	n.readyAt = t
	n.mu.Unlock()
}

func (n *node) set(f func(*NodeStatus)) {
	n.mu.Lock()
	f(&n.st)
	n.mu.Unlock()
}

func (n *node) setProc(p Proc) {
	n.mu.Lock()
	n.proc = p
	n.probeFails = 0
	n.mu.Unlock()
}

func (n *node) setAnnounced(v bool) {
	n.mu.Lock()
	if n.st.State == StateRunning {
		n.st.Announced = v
	}
	n.mu.Unlock()
}

// probeResult records one health probe (rttMillis is its round-trip,
// meaningful when ok). ProbeFailLimit consecutive failures against a live
// process mean the daemon is wedged — accepting TCP but not answering, or
// not even accepting — and the only cure is a kill; the exit path then
// restarts it with backoff.
func (n *node) probeResult(ok bool, rttMillis int64) {
	n.mu.Lock()
	if n.st.State != StateRunning || ok {
		if ok && n.st.State == StateRunning {
			n.st.LastProbeMillis = rttMillis
		}
		n.probeFails = 0
		n.mu.Unlock()
		return
	}
	n.probeFails++
	fails := n.probeFails
	proc := n.proc
	n.mu.Unlock()
	if fails >= n.sup.opt.ProbeFailLimit && proc != nil {
		n.sup.logf("%s: %d consecutive probe failures — killing wedged daemon", n.spec.Node, fails)
		_ = proc.Kill()
	}
}

// run is the node's supervision loop: spawn, wait for readiness, watch for
// exit (or a stop/restart request), and decide what the exit means —
// intentional stop, permanent refusal, or a crash to heal with backoff.
func (n *node) run() {
	defer n.sup.wg.Done()
	backoff := n.sup.opt.BackoffMin
	for {
		n.set(func(st *NodeStatus) { st.State = StateStarting; st.PID = 0; st.Announced = false })
		proc, ready, err := n.spawn()
		if err != nil {
			n.sup.logf("%s: %v", n.spec.Node, err)
			n.set(func(st *NodeStatus) { st.LastExit = err.Error(); st.State = StateBackoff })
			if !n.backoffWait(&backoff) {
				return
			}
			continue
		}
		n.setProc(proc)
		n.set(func(st *NodeStatus) { st.PID = proc.PID() })
		exitCh := make(chan Exit, 1)
		go func() { exitCh <- proc.Wait() }()

		readyTimer := time.NewTimer(n.sup.opt.ReadyTimeout)
		quit, cmds := n.sup.quit, n.cmds
		var exit Exit
		var stopReq, restartReq bool
		var ack chan error
		var graceTimer *time.Timer
		var readyAt time.Time
	wait:
		for {
			select {
			case <-ready:
				ready = nil
				readyAt = time.Now()
				readyTimer.Stop()
				n.setReadyAt(readyAt)
				n.set(func(st *NodeStatus) { st.State = StateRunning })
				n.sup.logf("%s: running (pid %d) on %s", n.spec.Node, proc.PID(), n.spec.Addr)
			case <-readyTimer.C:
				n.sup.logf("%s: no readiness after %v — killing for retry", n.spec.Node, n.sup.opt.ReadyTimeout)
				_ = proc.Kill()
			case <-quit:
				quit, cmds = nil, nil
				stopReq = true
				n.set(func(st *NodeStatus) { st.State = StateStopping })
				graceTimer = n.terminate(proc)
			case cmd := <-cmds:
				cmds = nil // one restart at a time; later senders wait for the respawned loop
				restartReq = true
				ack = cmd.done
				n.set(func(st *NodeStatus) { st.State = StateStopping })
				graceTimer = n.terminate(proc)
			case exit = <-exitCh:
				break wait
			}
		}
		readyTimer.Stop()
		if graceTimer != nil {
			graceTimer.Stop()
		}
		n.setProc(nil)
		n.setReadyAt(time.Time{})
		n.set(func(st *NodeStatus) {
			st.PID = 0
			st.Announced = false
			st.LastExit = exit.String()
			st.LastProbeMillis = -1
			st.ReadyForMillis = 0
		})

		switch {
		case stopReq:
			n.set(func(st *NodeStatus) { st.State = StateStopped })
			n.sup.logf("%s: stopped (%s)", n.spec.Node, exit)
			if ack != nil { // a restart request overtaken by shutdown
				ack <- fmt.Errorf("launch: %s: shutting down", n.spec.Node)
			}
			return
		case restartReq:
			n.set(func(st *NodeStatus) { st.Restarts++ })
			n.sup.logf("%s: restarting on request", n.spec.Node)
			backoff = n.sup.opt.BackoffMin
			ack <- nil
			continue
		case exit.Refused():
			// Respawning an identically misconfigured daemon refuses
			// identically: give up loudly instead of banging the backoff
			// ceiling forever.
			n.set(func(st *NodeStatus) { st.State = StateFailed })
			n.sup.logf("%s: daemon refused its configuration (%s) — giving up", n.spec.Node, exit)
			return
		default:
			n.set(func(st *NodeStatus) { st.Restarts++; st.State = StateBackoff })
			if !readyAt.IsZero() && time.Since(readyAt) >= n.sup.opt.StableAfter {
				backoff = n.sup.opt.BackoffMin
			}
			n.sup.logf("%s: exited (%s) — restarting in %v", n.spec.Node, exit, backoff)
			if !n.backoffWait(&backoff) {
				return
			}
		}
	}
}

// spawn launches the daemon process and returns a channel closed when its
// readiness line appears on stdout. A respawn carries its restart
// generation as -epoch, so the fresh daemon's metrics report which
// incarnation they come from (the daemon_restarts gauge).
func (n *node) spawn() (Proc, <-chan struct{}, error) {
	ready := make(chan struct{})
	var once sync.Once
	stdout := &lineWriter{dst: n.sup.opt.Out, prefix: "[" + n.spec.Node + "] ", onLine: func(line string) {
		if _, _, ok := ParseReady(line); ok {
			once.Do(func() { close(ready) })
		}
	}}
	stderr := &lineWriter{dst: n.sup.opt.Out, prefix: "[" + n.spec.Node + "!] "}
	args := n.spec.Args
	if restarts := n.status().Restarts; restarts > 0 {
		args = append(append([]string(nil), args...), "-epoch", strconv.Itoa(restarts))
	}
	proc, err := n.sup.exec.Start(n.spec, args, stdout, stderr)
	if err != nil {
		return nil, nil, err
	}
	return proc, ready, nil
}

// terminate asks the process to stop cleanly and arms the SIGKILL grace
// timer; the caller stops the timer once the exit is observed.
func (n *node) terminate(proc Proc) *time.Timer {
	_ = proc.Signal(syscall.SIGTERM)
	return time.AfterFunc(n.sup.opt.Grace, func() { _ = proc.Kill() })
}

// backoffWait sleeps out the current backoff, doubling it (capped) for the
// next crash. A shutdown ends the node; an operator restart request cuts
// the wait short and resets the backoff to its floor.
func (n *node) backoffWait(backoff *time.Duration) bool {
	t := time.NewTimer(*backoff)
	defer t.Stop()
	select {
	case <-t.C:
		*backoff = min(*backoff*2, n.sup.opt.BackoffMax)
		return true
	case <-n.sup.quit:
		n.set(func(st *NodeStatus) { st.State = StateStopped })
		return false
	case cmd := <-n.cmds:
		*backoff = n.sup.opt.BackoffMin
		cmd.done <- nil
		return true
	}
}

// lineWriter forwards a child's output line by line — prefixed per node so
// interleaved grids stay readable — and lets the supervisor watch each
// stdout line for the readiness marker.
type lineWriter struct {
	dst    io.Writer
	prefix string
	onLine func(line string)

	mu  sync.Mutex
	buf []byte
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := string(w.buf[:i])
		w.buf = append(w.buf[:0], w.buf[i+1:]...)
		if w.dst != nil {
			fmt.Fprintf(w.dst, "%s%s\n", w.prefix, line)
		}
		if w.onLine != nil {
			w.onLine(line)
		}
	}
}
