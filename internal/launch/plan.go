package launch

import (
	"fmt"
	"net"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"padico/internal/deploy"
)

// DefaultBasePort is the first control port a plan assigns when the caller
// does not choose: node i (in name order) listens on DefaultBasePort+i.
const DefaultBasePort = 7710

// PlanOptions parameterizes BuildPlan. The zero value plans a loopback
// grid: every daemon on 127.0.0.1, ports from DefaultBasePort up, registry
// replicas where the topology's zones put them.
type PlanOptions struct {
	// BasePort is the first control port (DefaultBasePort when zero);
	// node i in name order gets BasePort+i.
	BasePort int
	// Ports overrides the port of individual nodes.
	Ports map[string]int
	// Host maps a node name to the host its daemon listens and is dialed
	// on. Nil means 127.0.0.1 everywhere — the loopback grid.
	Host func(node string) string
	// Registries overrides the registry-replica placement (default: the
	// topology's RegistryPlacement — first node of every zone). Mutually
	// exclusive with Shards > 1, whose placement is computed.
	Registries []string
	// Shards partitions the registry directory by name hash into this many
	// shards, placed by the topology's ShardPlacement — the same seam the
	// simulator's LaunchAllSharded and padico-d share. Zero or one plans
	// the classic single-shard registry.
	Shards int
	// Modules are loaded at boot on every node.
	Modules []string
	// ExtraModules are loaded at boot on specific nodes, after Modules.
	ExtraModules map[string][]string
	// LeaseTTL and SyncInterval are forwarded to every daemon when set.
	LeaseTTL     time.Duration
	SyncInterval time.Duration
	// HTTPBase, when positive, gives every daemon an observability HTTP
	// listener (/metrics, /debug/pprof): node i in name order binds
	// host:HTTPBase+i. Zero leaves the listeners off.
	HTTPBase int
}

// NodeSpec is one planned daemon: where it runs, where its control
// endpoint lives, and the exact padico-d argument vector that realizes it.
type NodeSpec struct {
	Node       string
	Zone       string
	Addr       string // control endpoint, "host:port"
	HTTPAddr   string // observability endpoint, "host:port" ("" = off)
	Registries []string
	Args       []string // padico-d flags, ready to exec
}

// Plan is a fully computed deployment: every flag every daemon needs,
// derived from the grid XML alone — replica placement, peer endpoint
// seeding and port assignment included, so daemons mesh without operator
// input. Specs are sorted by node name.
type Plan struct {
	Grid       string
	Registries []string
	// ShardGroups is the shard → replica-group placement of a sharded
	// plan (PlanOptions.Shards > 1); nil for the single-shard registry.
	// Registries is then the union of the groups' hosts.
	ShardGroups [][]string
	Specs       []NodeSpec
}

// BuildPlan computes the deployment plan for a topology. Placement follows
// Topology.RegistryPlacement (the same rule deploy.LaunchAll realizes in
// the simulator, so live and simulated grids agree on where replicas
// live); every daemon is seeded with every planned endpoint, so the first
// announce lands regardless of boot order.
func BuildPlan(topo *deploy.Topology, opts PlanOptions) (*Plan, error) {
	if len(topo.Nodes) == 0 {
		return nil, fmt.Errorf("launch: grid %q has no nodes", topo.Name)
	}
	zones := topo.ZoneMap()
	names := make([]string, 0, len(zones))
	for n := range zones {
		names = append(names, n)
	}
	sort.Strings(names)

	regs := topo.RegistryPlacement()
	var shardGroups [][]string
	if opts.Shards > 1 {
		if len(opts.Registries) > 0 {
			return nil, fmt.Errorf("launch: -registries names a single-shard placement; a sharded plan places replicas itself")
		}
		shardGroups = topo.ShardPlacement(opts.Shards)
		seen := map[string]bool{}
		regs = regs[:0]
		for _, g := range shardGroups {
			for _, n := range g {
				if !seen[n] {
					seen[n] = true
					regs = append(regs, n)
				}
			}
		}
		sort.Strings(regs)
	} else if len(opts.Registries) > 0 {
		regs = append([]string(nil), opts.Registries...)
		sort.Strings(regs)
		for _, r := range regs {
			if _, ok := zones[r]; !ok {
				return nil, fmt.Errorf("launch: registry host %q is not a grid node", r)
			}
		}
	}

	hostFor := opts.Host
	if hostFor == nil {
		hostFor = func(string) string { return "127.0.0.1" }
	}
	basePort := opts.BasePort
	if basePort <= 0 {
		basePort = DefaultBasePort
	}
	addrs := make(map[string]string, len(names))
	byAddr := make(map[string]string, len(names))
	for i, n := range names {
		port, ok := opts.Ports[n]
		if !ok {
			port = basePort + i
		}
		addr := net.JoinHostPort(hostFor(n), strconv.Itoa(port))
		if prev, dup := byAddr[addr]; dup {
			return nil, fmt.Errorf("launch: nodes %s and %s share endpoint %s", prev, n, addr)
		}
		byAddr[addr] = n
		addrs[n] = addr
	}

	p := &Plan{Grid: topo.Name, Registries: regs, ShardGroups: shardGroups}
	for i, n := range names {
		peers := make([]string, 0, len(names)-1)
		for _, o := range names {
			if o != n {
				peers = append(peers, o+"="+addrs[o])
			}
		}
		modules := append(append([]string(nil), opts.Modules...), opts.ExtraModules[n]...)
		args := []string{"-node", n}
		if zones[n] != "" {
			args = append(args, "-zone", zones[n])
		}
		args = append(args, "-listen", addrs[n])
		if len(shardGroups) > 1 {
			args = append(args, "-shard-groups", deploy.FormatShardGroups(shardGroups))
		} else {
			args = append(args, "-registries", strings.Join(regs, ","))
		}
		if len(peers) > 0 {
			args = append(args, "-peers", strings.Join(peers, ","))
		}
		if len(modules) > 0 {
			args = append(args, "-modules", strings.Join(modules, ","))
		}
		if opts.LeaseTTL > 0 {
			args = append(args, "-lease", opts.LeaseTTL.String())
		}
		if opts.SyncInterval > 0 {
			args = append(args, "-sync", opts.SyncInterval.String())
		}
		httpAddr := ""
		if opts.HTTPBase > 0 {
			httpAddr = net.JoinHostPort(hostFor(n), strconv.Itoa(opts.HTTPBase+i))
			args = append(args, "-http", httpAddr)
		}
		p.Specs = append(p.Specs, NodeSpec{
			Node:       n,
			Zone:       zones[n],
			Addr:       addrs[n],
			HTTPAddr:   httpAddr,
			Registries: regs,
			Args:       args,
		})
	}
	return p, nil
}

// Nodes returns the planned node names, in plan (name) order.
func (p *Plan) Nodes() []string {
	out := make([]string, len(p.Specs))
	for i, s := range p.Specs {
		out[i] = s.Node
	}
	return out
}

// ZoneNodes returns the planned nodes of one administrative zone, in plan
// order — the unit of a rolling restart.
func (p *Plan) ZoneNodes(zone string) []string {
	var out []string
	for _, s := range p.Specs {
		if s.Zone == zone {
			out = append(out, s.Node)
		}
	}
	return out
}

// Spec returns the plan of one node.
func (p *Plan) Spec(node string) (NodeSpec, bool) {
	for _, s := range p.Specs {
		if s.Node == node {
			return s, true
		}
	}
	return NodeSpec{}, false
}

// Endpoints returns every planned control endpoint, in plan order — what
// an operator would hand to `padico-ctl -attach`.
func (p *Plan) Endpoints() []string {
	out := make([]string, len(p.Specs))
	for i, s := range p.Specs {
		out[i] = s.Addr
	}
	return out
}

// HasZone reports whether any planned node belongs to the zone.
func (p *Plan) HasZone(zone string) bool {
	return slices.ContainsFunc(p.Specs, func(s NodeSpec) bool { return s.Zone == zone })
}
