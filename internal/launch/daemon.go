// Package launch is the grid launcher & supervision subsystem: the layer
// that turns "a pile of padico-d daemons the operator starts by hand" into
// "describe the grid once, Padico takes it from there". It reads the same
// grid XML the simulator deploys from, computes one padico-d per node
// (control ports, zones, registry-replica placement, peer endpoint seeds),
// spawns the daemons through a pluggable executor — a local process for
// loopback grids, a command template such as "ssh {host} padico-d" for real
// machines — and babysits the result: readiness tracking, gatekeeper health
// probes, supervised restart with exponential backoff, re-announce
// verification, rolling restart by zone, and graceful teardown.
package launch

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"

	"padico/internal/deploy"
)

// Daemon exit codes. The supervisor keys its restart policy on them: a
// crash or runtime failure is retried with backoff, a configuration refusal
// is permanent — respawning an identically misconfigured daemon cannot
// help.
const (
	// ExitOK is a clean shutdown (SIGINT/SIGTERM handled, registry
	// entries withdrawn).
	ExitOK = 0
	// ExitRuntime is a runtime failure after the configuration was
	// accepted — a bind error, a module load failure. Restartable.
	ExitRuntime = 1
	// ExitRefused is a configuration refusal — bad flags, bad grid XML, a
	// node name the grid does not contain. Not restartable.
	ExitRefused = 2
)

// DaemonMain is the padico-d entry point: cmd/padico-d wraps it, and
// cmd/padico-launch re-execs itself through it so one binary can spawn a
// whole grid. It returns an exit code from the table above and prints the
// readiness line ParseReady recognizes on out once the daemon serves.
func DaemonMain(argv []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("padico-d", flag.ContinueOnError)
	fs.SetOutput(errOut)
	node := fs.String("node", "", "this daemon's node name")
	zone := fs.String("zone", "", "administrative zone (default: from -grid, if given)")
	listen := fs.String("listen", "127.0.0.1:0", "bind address of the TCP control listener")
	advertise := fs.String("advertise", "", "endpoint other processes dial (default: actual listen address)")
	gridPath := fs.String("grid", "", "grid topology XML (zones and default registry placement)")
	registry := fs.Bool("registry", false, "host a registry replica on this node")
	registries := fs.String("registries", "", "comma-separated registry replica node names (overrides -grid placement)")
	shards := fs.Int("shards", 0, "shard the registry directory this many ways, placed from -grid (requires -grid)")
	shardGroups := fs.String("shard-groups", "", "explicit shard replica groups: semicolon-separated, each a comma-separated node list (overrides -shards)")
	peers := fs.String("peers", "", "comma-separated node=host:port endpoint seeds")
	modules := fs.String("modules", "", "comma-separated modules to load at boot")
	lease := fs.Duration("lease", 0, "registry lease TTL (default 5s)")
	syncIv := fs.Duration("sync", 0, "anti-entropy sync interval for a hosted replica (default 1s)")
	httpAddr := fs.String("http", "", "observability HTTP listener (/metrics and /debug/pprof); empty = off")
	epoch := fs.Int("epoch", 0, "restart generation, set by the supervisor on respawn")
	traceSample := fs.Int("trace-sample", 0, "record 1 in N locally initiated root spans (0 = off, 1 = all)")
	if err := fs.Parse(argv); err != nil {
		return ExitRefused
	}

	refuse := func(err error) int {
		fmt.Fprintln(errOut, "padico-d:", err)
		return ExitRefused
	}
	cfg := deploy.DaemonConfig{
		Node:         *node,
		Zone:         *zone,
		Listen:       *listen,
		Advertise:    *advertise,
		LeaseTTL:     *lease,
		SyncInterval: *syncIv,
		HTTP:         *httpAddr,
		Epoch:        *epoch,
		TraceSample:  *traceSample,
		Peers:        map[string]string{},
	}
	if cfg.Node == "" {
		return refuse(fmt.Errorf("missing -node"))
	}
	var topo *deploy.Topology
	if *gridPath != "" {
		src, err := os.ReadFile(*gridPath)
		if err != nil {
			return refuse(err)
		}
		topo, err = deploy.ParseTopology(src)
		if err != nil {
			return refuse(err)
		}
		zones := topo.ZoneMap()
		z, ok := zones[cfg.Node]
		if !ok {
			return refuse(fmt.Errorf("node %q is not in grid %q", cfg.Node, topo.Name))
		}
		if cfg.Zone == "" {
			cfg.Zone = z
		}
		cfg.Registries = topo.RegistryPlacement()
	}
	if *registries != "" {
		cfg.Registries = deploy.SplitList(*registries)
	}
	if *registry && !slices.Contains(cfg.Registries, cfg.Node) {
		cfg.Registries = append(cfg.Registries, cfg.Node)
	}
	switch {
	case *shardGroups != "":
		groups, err := deploy.ParseShardGroups(*shardGroups)
		if err != nil {
			return refuse(err)
		}
		cfg.ShardGroups = groups
	case *shards > 1:
		if topo == nil {
			return refuse(fmt.Errorf("-shards needs -grid to place the shard groups (or pass -shard-groups explicitly)"))
		}
		cfg.ShardGroups = topo.ShardPlacement(*shards)
	}
	for _, kv := range deploy.SplitList(*peers) {
		n, a, ok := strings.Cut(kv, "=")
		if !ok {
			return refuse(fmt.Errorf("bad -peers entry %q (want node=host:port)", kv))
		}
		cfg.Peers[n] = a
	}
	cfg.Modules = deploy.SplitList(*modules)

	d, err := deploy.StartDaemon(cfg)
	if err != nil {
		fmt.Fprintln(errOut, "padico-d:", err)
		return ExitRuntime
	}
	extra := ""
	if d.HTTP != nil {
		extra = " http=" + d.HTTP.Addr()
	}
	fmt.Fprintf(out, "padico-d: %s%s%s (registries %s)%s\n",
		d.Node(), readyMarker, d.Addr(), strings.Join(d.Registries(), ","), extra)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	fmt.Fprintf(out, "padico-d: %s shutting down\n", d.Node())
	d.Close()
	return ExitOK
}

// readyMarker is the token DaemonMain's readiness line carries; the
// supervisor scans a child's stdout for it.
const readyMarker = " serving on "

// ParseReady recognizes padico-d's readiness line ("padico-d: <node>
// serving on <addr> ...") and extracts the node name and the advertised
// endpoint.
func ParseReady(line string) (node, addr string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(line), "padico-d: ")
	if !found {
		return "", "", false
	}
	node, rest, found = strings.Cut(rest, readyMarker)
	if !found || node == "" {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", false
	}
	return node, fields[0], true
}
