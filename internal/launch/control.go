package launch

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"
)

// The launcher's control protocol: `padico-launch up` serves a tiny TCP
// endpoint (loopback by default) and later `padico-launch status|restart|
// down` invocations steer the running launcher through it — one JSON
// request, one JSON response per connection. This is operator plumbing for
// the supervisor itself; steering the *daemons* stays with padico-ctl and
// the gatekeeper protocol.

type ctlRequest struct {
	Op   string `json:"op"` // "status" | "restart" | "down"
	Zone string `json:"zone,omitempty"`
	Node string `json:"node,omitempty"`
}

type ctlResponse struct {
	Err   string       `json:"err,omitempty"`
	Msg   string       `json:"msg,omitempty"`
	Nodes []NodeStatus `json:"nodes,omitempty"`
}

// controlIOTimeout bounds one control exchange on the wire; restarts are
// bounded separately (and more generously) by restartTimeout.
const controlIOTimeout = 5 * time.Minute

// restartTimeout bounds each phase of one node's operator-requested
// restart (stop, respawn, ready).
const restartTimeout = time.Minute

// ControlServer serves the launcher's control endpoint.
type ControlServer struct {
	l    net.Listener
	s    *Supervisor
	down func()
}

// ServeControl binds the control listener and serves the supervisor over
// it. down is invoked (once, asynchronously) when a "down" request asks
// the launcher to tear the grid down and exit.
func ServeControl(addr string, s *Supervisor, down func()) (*ControlServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("launch: control listen %s: %w", addr, err)
	}
	c := &ControlServer{l: l, s: s, down: down}
	go c.acceptLoop()
	return c, nil
}

// Addr returns the control endpoint's actual address.
func (c *ControlServer) Addr() string { return c.l.Addr().String() }

// Close stops accepting control connections.
func (c *ControlServer) Close() { _ = c.l.Close() }

func (c *ControlServer) acceptLoop() {
	for {
		conn, err := c.l.Accept()
		if err != nil {
			return
		}
		go c.serve(conn)
	}
}

func (c *ControlServer) serve(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(controlIOTimeout))
	var req ctlRequest
	if err := json.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	resp := c.handle(req)
	_ = json.NewEncoder(conn).Encode(resp)
}

func (c *ControlServer) handle(req ctlRequest) *ctlResponse {
	switch req.Op {
	case "status":
		return &ctlResponse{Nodes: c.s.Status()}
	case "restart":
		nodes, err := c.restartTargets(req)
		if err != nil {
			return &ctlResponse{Err: err.Error()}
		}
		if err := c.s.RestartNodes(nodes, restartTimeout); err != nil {
			return &ctlResponse{Err: err.Error()}
		}
		return &ctlResponse{
			Msg:   "restarted " + strings.Join(nodes, ","),
			Nodes: c.s.Status(),
		}
	case "down":
		if c.down != nil {
			go c.down()
		}
		return &ctlResponse{Msg: "tearing down grid " + c.s.Plan().Grid}
	default:
		return &ctlResponse{Err: fmt.Sprintf("unknown control op %q", req.Op)}
	}
}

// restartTargets resolves a restart request to a rolling-restart order:
// one named node, one zone's nodes, or (neither given) the whole grid.
func (c *ControlServer) restartTargets(req ctlRequest) ([]string, error) {
	plan := c.s.Plan()
	switch {
	case req.Node != "" && req.Zone != "":
		return nil, fmt.Errorf("restart wants a node or a zone, not both")
	case req.Node != "":
		if _, ok := plan.Spec(req.Node); !ok {
			return nil, fmt.Errorf("unknown node %q", req.Node)
		}
		return []string{req.Node}, nil
	case req.Zone != "":
		nodes := plan.ZoneNodes(req.Zone)
		if len(nodes) == 0 {
			return nil, fmt.Errorf("no nodes in zone %q", req.Zone)
		}
		return nodes, nil
	default:
		return plan.Nodes(), nil
	}
}

// controlRoundTrip performs one request/response exchange with a running
// launcher's control endpoint.
func controlRoundTrip(addr string, req ctlRequest) (*ctlResponse, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("launch: control dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(controlIOTimeout))
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("launch: control to %s: %w", addr, err)
	}
	var resp ctlResponse
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("launch: control from %s: %w", addr, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("launch: control %s: %s", addr, resp.Err)
	}
	return &resp, nil
}

// ControlStatus fetches the supervision report from a running launcher.
func ControlStatus(addr string) ([]NodeStatus, error) {
	resp, err := controlRoundTrip(addr, ctlRequest{Op: "status"})
	if err != nil {
		return nil, err
	}
	return resp.Nodes, nil
}

// ControlRestart asks a running launcher for a rolling restart of one
// node, one zone, or (both empty) the whole grid.
func ControlRestart(addr, zone, node string) (string, []NodeStatus, error) {
	resp, err := controlRoundTrip(addr, ctlRequest{Op: "restart", Zone: zone, Node: node})
	if err != nil {
		return "", nil, err
	}
	return resp.Msg, resp.Nodes, nil
}

// ControlDown asks a running launcher to tear its grid down and exit.
func ControlDown(addr string) (string, error) {
	resp, err := controlRoundTrip(addr, ctlRequest{Op: "down"})
	if err != nil {
		return "", err
	}
	return resp.Msg, nil
}
