package core

import (
	"fmt"

	"padico/internal/hla"
	"padico/internal/simnet"
	"padico/internal/soap"
)

// Built-in module types, pre-registered so processes (and the gatekeeper's
// remote load requests) can load the paper's whole middleware mix by name:
// "vlink", "corba:<profile>" for each emulated ORB, "soap", "hla" and
// "mpi". Further types (the gatekeeper itself, application services)
// register themselves from their packages or from applications.
func init() {
	RegisterModuleType("vlink", func() Module { return &vlinkModule{} })
	for _, prof := range []simnet.ORBProfile{
		simnet.OmniORB3, simnet.OmniORB4, simnet.Mico, simnet.ORBacus, simnet.OpenCCMJava,
	} {
		prof := prof
		RegisterModuleType("corba:"+prof.Name, func() Module { return &corbaModule{profile: prof} })
	}
	RegisterModuleType("soap", func() Module { return &soapModule{} })
	RegisterModuleType("hla", func() Module { return &hlaModule{} })
	RegisterModuleType("mpi", func() Module { return &mpiModule{} })
}

// vlinkModule owns the process's VLink factory.
type vlinkModule struct{ p *Process }

func (m *vlinkModule) Name() string       { return "vlink" }
func (m *vlinkModule) Requires() []string { return nil }
func (m *vlinkModule) Init(p *Process) error {
	m.p = p
	p.Linker() // force creation
	return nil
}
func (m *vlinkModule) Stop() error { return nil }

// corbaModule boots an ORB with a given implementation profile.
type corbaModule struct {
	profile simnet.ORBProfile
	p       *Process
}

func (m *corbaModule) Name() string       { return "corba:" + m.profile.Name }
func (m *corbaModule) Requires() []string { return []string{"vlink"} }
func (m *corbaModule) Init(p *Process) error {
	m.p = p
	if _, err := p.ORB(m.profile); err != nil {
		return fmt.Errorf("core: corba module: %w", err)
	}
	return nil
}
func (m *corbaModule) Stop() error { return nil }

// soapModule boots the SOAP middleware: a server on the well-known "sys"
// service with introspection handlers, so a freshly hot-loaded process is
// immediately invokable over web-services RPC (echo, module list).
// Applications add further services with soap.Serve directly.
type soapModule struct {
	p   *Process
	srv *soap.Server
}

func (m *soapModule) Name() string       { return "soap" }
func (m *soapModule) Requires() []string { return []string{"vlink"} }
func (m *soapModule) Init(p *Process) error {
	m.p = p
	srv, err := soap.Serve(p.Linker(), "sys", map[string]soap.Handler{
		"echo": func(params []string) ([]string, error) { return params, nil },
		"modules": func([]string) ([]string, error) {
			return p.Modules(), nil
		},
	})
	if err != nil {
		return fmt.Errorf("core: soap module: %w", err)
	}
	m.srv = srv
	return nil
}
func (m *soapModule) Stop() error {
	m.srv.Close()
	return nil
}

// hlaModule boots the HLA run-time infrastructure on this process; remote
// federates join federations hosted here via hla.Join.
type hlaModule struct {
	rti *hla.RTI
}

func (m *hlaModule) Name() string       { return "hla" }
func (m *hlaModule) Requires() []string { return []string{"vlink"} }
func (m *hlaModule) Init(p *Process) error {
	rti, err := hla.StartRTI(p.Linker())
	if err != nil {
		return fmt.Errorf("core: hla module: %w", err)
	}
	m.rti = rti
	return nil
}
func (m *hlaModule) Stop() error {
	m.rti.Close()
	return nil
}

// mpiModule marks the process MPI-ready: it verifies the node sits on an
// arbitrated device a circuit could use. Communicators themselves are
// application state created by mpi.Join with a concrete member list.
type mpiModule struct{}

func (m *mpiModule) Name() string       { return "mpi" }
func (m *mpiModule) Requires() []string { return nil }
func (m *mpiModule) Init(p *Process) error {
	for _, dev := range p.Grid().Arb.Devices() {
		if dev.Fabric.Attached(p.Node()) {
			return nil
		}
	}
	return fmt.Errorf("core: mpi module: node %s reaches no arbitrated device", p.Node().Name)
}
func (m *mpiModule) Stop() error { return nil }

// FuncModule adapts plain functions into a Module, for application-defined
// services.
type FuncModule struct {
	ModName string
	Deps    []string
	OnInit  func(p *Process) error
	OnStop  func() error
}

// Name implements Module.
func (m *FuncModule) Name() string { return m.ModName }

// Requires implements Module.
func (m *FuncModule) Requires() []string { return m.Deps }

// Init implements Module.
func (m *FuncModule) Init(p *Process) error {
	if m.OnInit == nil {
		return nil
	}
	return m.OnInit(p)
}

// Stop implements Module.
func (m *FuncModule) Stop() error {
	if m.OnStop == nil {
		return nil
	}
	return m.OnStop()
}
