package core

import (
	"fmt"

	"padico/internal/simnet"
)

// Built-in module types, pre-registered so processes can load the paper's
// middleware mix by name: "vlink", and "corba:<profile>" for each emulated
// ORB. Further types (soap, hla, mpi workers) register themselves from
// their packages or from applications.
func init() {
	RegisterModuleType("vlink", func() Module { return &vlinkModule{} })
	for _, prof := range []simnet.ORBProfile{
		simnet.OmniORB3, simnet.OmniORB4, simnet.Mico, simnet.ORBacus, simnet.OpenCCMJava,
	} {
		prof := prof
		RegisterModuleType("corba:"+prof.Name, func() Module { return &corbaModule{profile: prof} })
	}
}

// vlinkModule owns the process's VLink factory.
type vlinkModule struct{ p *Process }

func (m *vlinkModule) Name() string       { return "vlink" }
func (m *vlinkModule) Requires() []string { return nil }
func (m *vlinkModule) Init(p *Process) error {
	m.p = p
	p.Linker() // force creation
	return nil
}
func (m *vlinkModule) Stop() error { return nil }

// corbaModule boots an ORB with a given implementation profile.
type corbaModule struct {
	profile simnet.ORBProfile
	p       *Process
}

func (m *corbaModule) Name() string       { return "corba:" + m.profile.Name }
func (m *corbaModule) Requires() []string { return []string{"vlink"} }
func (m *corbaModule) Init(p *Process) error {
	m.p = p
	if _, err := p.ORB(m.profile); err != nil {
		return fmt.Errorf("core: corba module: %w", err)
	}
	return nil
}
func (m *corbaModule) Stop() error { return nil }

// FuncModule adapts plain functions into a Module, for application-defined
// services.
type FuncModule struct {
	ModName string
	Deps    []string
	OnInit  func(p *Process) error
	OnStop  func() error
}

// Name implements Module.
func (m *FuncModule) Name() string { return m.ModName }

// Requires implements Module.
func (m *FuncModule) Requires() []string { return m.Deps }

// Init implements Module.
func (m *FuncModule) Init(p *Process) error {
	if m.OnInit == nil {
		return nil
	}
	return m.OnInit(p)
}

// Stop implements Module.
func (m *FuncModule) Stop() error {
	if m.OnStop == nil {
		return nil
	}
	return m.OnStop()
}
