// Package core is the Padico runtime proper: the process model and the
// dynamic module system that let several middleware systems (CORBA, MPI,
// SOAP, HLA, ...) cohabit in one process, be loaded and unloaded at run
// time, and share the grid's networks through one arbitration layer —
// §4.3.4's "the middleware systems, like any other PadicoTM module, are
// dynamically loadable; any combination of them may be used at the same
// time and can be dynamically changed".
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"padico/internal/arbitration"
	"padico/internal/idl"
	"padico/internal/marcel"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/telemetry"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Grid is one computational grid: the network, its arbitration core and the
// Padico processes running on the nodes. A grid runs either on the
// deterministic simulator (NewGrid — Sim is set) or on the wall clock
// (NewGridOn — Sim is nil), so the same process/module machinery serves
// simulation studies and live padico-d daemons alike.
type Grid struct {
	Sim *vtime.Sim // deterministic runtime; nil for a wall-clock grid
	Net *simnet.Net
	Arb *arbitration.Arbiter

	rt    vtime.Runtime
	mu    sync.Mutex
	procs map[string]*Process
}

// NewGrid builds an empty grid on a fresh deterministic runtime.
func NewGrid() *Grid {
	sim := vtime.NewSim()
	g := newGrid(sim)
	g.Sim = sim
	return g
}

// NewGridOn builds an empty grid on an arbitrary runtime — in particular
// the wall clock, where one OS process hosts one Padico process (the
// padico-d daemon) and the simulated fabrics only model the node-local
// loopback. Wall grids have no root actor: callers drive processes from
// plain goroutines and must not call Run.
func NewGridOn(rt vtime.Runtime) *Grid { return newGrid(rt) }

func newGrid(rt vtime.Runtime) *Grid {
	net := simnet.New(rt)
	return &Grid{Net: net, Arb: arbitration.New(net), rt: rt, procs: make(map[string]*Process)}
}

// Runtime returns the runtime the grid schedules on (the simulator or the
// wall clock).
func (g *Grid) Runtime() vtime.Runtime { return g.rt }

// AddNodes registers n machines named prefix0..prefix<n-1>.
func (g *Grid) AddNodes(prefix string, n int) []*simnet.Node {
	nodes := make([]*simnet.Node, n)
	for i := range nodes {
		nodes[i] = g.Net.NewNode(fmt.Sprintf("%s%d", prefix, i))
	}
	return nodes
}

// AddMyrinet attaches nodes to a Myrinet-2000 SAN under arbitration.
func (g *Grid) AddMyrinet(name string, nodes []*simnet.Node) (*arbitration.Device, error) {
	return g.Arb.AddSAN(g.Net.NewMyrinet2000(name, nodes))
}

// AddEthernet attaches nodes to a Fast-Ethernet LAN under arbitration.
func (g *Grid) AddEthernet(name string, nodes []*simnet.Node) (*arbitration.Device, error) {
	return g.Arb.AddSock(g.Net.NewEthernet100(name, nodes))
}

// AddWAN attaches nodes to a wide-area trunk under arbitration.
func (g *Grid) AddWAN(name string, nodes []*simnet.Node, trunkBps float64, trunkLat time.Duration) (*arbitration.Device, error) {
	return g.Arb.AddSock(g.Net.NewWAN(name, nodes, trunkBps, trunkLat))
}

// Launch starts a Padico process on a node. One process per node.
func (g *Grid) Launch(node *simnet.Node) (*Process, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.procs[node.Name]; dup {
		return nil, fmt.Errorf("core: a process already runs on %s", node.Name)
	}
	p := &Process{
		grid:    g,
		node:    node,
		rt:      g.rt,
		mgr:     marcel.NewManager(g.rt),
		repo:    idl.NewRepository(),
		tel:     telemetry.New(node.Name, g.rt),
		modules: make(map[string]*moduleState),
		modSem:  vtime.NewSemaphore(g.rt, "core: module table "+node.Name, 1),
	}
	g.procs[node.Name] = p
	return p, nil
}

// Process looks up the process running on a node.
func (g *Grid) Process(nodeName string) (*Process, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.procs[nodeName]
	return p, ok
}

// Run executes body as the root actor of the grid's virtual time and shuts
// every process down afterwards. It requires a simulated grid; wall-clock
// grids (NewGridOn) are driven by plain goroutines and torn down by closing
// their processes directly.
func (g *Grid) Run(body func()) {
	if g.Sim == nil {
		panic("core: Grid.Run needs a simulated grid (NewGrid); wall grids run under the Go runtime directly")
	}
	g.Sim.Run(func() {
		defer g.shutdown()
		body()
	})
}

func (g *Grid) shutdown() {
	g.mu.Lock()
	procs := make([]*Process, 0, len(g.procs))
	for _, p := range g.procs {
		procs = append(procs, p)
	}
	g.mu.Unlock()
	// Two phases: every process drains (withdraws from grid services)
	// while the whole control plane is still up, then everything stops —
	// so no drain has to talk to an already-dead registry replica.
	for _, p := range procs {
		p.drain()
	}
	for _, p := range procs {
		p.Shutdown()
	}
	g.Arb.Close()
}

// Module is a dynamically loadable Padico unit (a middleware system, a
// service, a driver). Modules declare dependencies by name; the loader
// starts requirements first and refuses to unload a module that others
// still use.
type Module interface {
	Name() string
	Requires() []string
	Init(p *Process) error
	Stop() error
}

// Factory instantiates a module in a process.
type Factory func() Module

var (
	factoryMu sync.RWMutex
	factories = make(map[string]Factory)
)

// RegisterModuleType installs a module factory under a name; Load resolves
// dependencies through it. Built-in types "vlink", "corba:<profile>" are
// pre-registered.
func RegisterModuleType(name string, f Factory) {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	factories[name] = f
}

func lookupFactory(name string) (Factory, bool) {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	f, ok := factories[name]
	return f, ok
}

// Process is one Padico process: a module container plus the per-process
// views of the communication stack.
type Process struct {
	grid *Grid
	node *simnet.Node
	rt   vtime.Runtime
	mgr  *marcel.Manager
	repo *idl.Repository
	tel  *telemetry.Registry

	// modSem serializes whole load/unload operations (module Init may
	// block in virtual time, so a plain mutex cannot be held across it);
	// mu protects the maps for concurrent readers.
	modSem *vtime.Semaphore

	mu      sync.Mutex
	linker  *vlink.Linker
	orbs    map[string]*orb.ORB
	modules map[string]*moduleState
	hooks   map[int]func(ModuleEvent)
	hookSeq int
	down    bool
}

// ModuleEvent records one committed change to a process's module table.
type ModuleEvent struct {
	Op     string // "load" or "unload"
	Module string
}

// OnModuleEvent registers f to run after every committed load or unload in
// this process (one event per module actually loaded or stopped, including
// dependencies and cascade victims). Hooks run on the mutating actor while
// the module-operation lock is held, so they must not call Load/Unload
// synchronously — spawn through the runtime for anything heavy. The
// gatekeeper uses this to re-announce the process to the grid registry on
// churn. The returned cancel removes the hook.
func (p *Process) OnModuleEvent(f func(ModuleEvent)) (cancel func()) {
	p.mu.Lock()
	if p.hooks == nil {
		p.hooks = make(map[int]func(ModuleEvent))
	}
	p.hookSeq++
	id := p.hookSeq
	p.hooks[id] = f
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.hooks, id)
		p.mu.Unlock()
	}
}

// fireModuleEvent delivers ev to every registered hook.
func (p *Process) fireModuleEvent(ev ModuleEvent) {
	p.mu.Lock()
	fns := make([]func(ModuleEvent), 0, len(p.hooks))
	for _, f := range p.hooks {
		fns = append(fns, f)
	}
	p.mu.Unlock()
	for _, f := range fns {
		f(ev)
	}
}

type moduleState struct {
	mod  Module
	deps []string // modules this one required at load time
}

// Node returns the hosting machine.
func (p *Process) Node() *simnet.Node { return p.node }

// Grid returns the owning grid.
func (p *Process) Grid() *Grid { return p.grid }

// Runtime returns the process's runtime.
func (p *Process) Runtime() vtime.Runtime { return p.rt }

// Manager returns the process's marcel manager.
func (p *Process) Manager() *marcel.Manager { return p.mgr }

// Repo returns the process's IDL repository.
func (p *Process) Repo() *idl.Repository { return p.repo }

// Telemetry returns the process's metric/trace registry. Every process gets
// its own (keyed by node name), so multi-process simulations keep their
// numbers apart; live daemons share it with the gatekeeper's metrics op and
// the HTTP /metrics endpoint.
func (p *Process) Telemetry() *telemetry.Registry { return p.tel }

// Linker returns the process's VLink factory, creating it on first use.
func (p *Process) Linker() *vlink.Linker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.linker == nil {
		p.linker = vlink.NewLinker(p.grid.Arb, p.node)
		p.linker.SetTelemetry(p.tel)
	}
	return p.linker
}

// ORB returns the process's broker for an implementation profile, creating
// it on first use. Distinct profiles get distinct GIOP services, so e.g.
// a Mico and an omniORB can cohabit in one process (§4.3.4).
func (p *Process) ORB(profile simnet.ORBProfile) (*orb.ORB, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.orbs == nil {
		p.orbs = make(map[string]*orb.ORB)
	}
	if o, ok := p.orbs[profile.Name]; ok {
		return o, nil
	}
	ln := p.linker
	if ln == nil {
		ln = vlink.NewLinker(p.grid.Arb, p.node)
		ln.SetTelemetry(p.tel)
		p.linker = ln
	}
	service := "giop"
	if len(p.orbs) > 0 {
		service = "giop:" + profile.Name
	}
	o, err := orb.New(orb.Config{
		Transport: orb.VLinkTransport{Linker: ln},
		Repo:      p.repo,
		Profile:   profile,
		Runtime:   p.rt,
		Node:      p.node,
		Service:   service,
	})
	if err != nil {
		return nil, err
	}
	p.orbs[profile.Name] = o
	return o, nil
}

// lockModules takes the module-operation lock. It parks the caller (in
// virtual time) while another load/unload is in flight, so module Init/Stop
// never run concurrently in one process.
func (p *Process) lockModules() error {
	if err := p.modSem.Acquire(); err != nil {
		return fmt.Errorf("core: module table lock: %w", err)
	}
	p.mu.Lock()
	down := p.down
	p.mu.Unlock()
	if down {
		p.modSem.Release()
		return fmt.Errorf("core: process on %s is shut down", p.node.Name)
	}
	return nil
}

// Load instantiates and initializes a module (and, recursively, its
// requirements) in this process. Concurrent loads and unloads are safe:
// whole operations are serialized, so a module is initialized exactly once.
func (p *Process) Load(name string) error {
	if err := p.lockModules(); err != nil {
		return err
	}
	defer p.modSem.Release()
	return p.load(name, nil)
}

func (p *Process) load(name string, stack []string) error {
	for _, s := range stack {
		if s == name {
			return fmt.Errorf("core: module dependency cycle: %v -> %s", stack, name)
		}
	}
	p.mu.Lock()
	if _, loaded := p.modules[name]; loaded {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	f, ok := lookupFactory(name)
	if !ok {
		return fmt.Errorf("core: no module type %q registered", name)
	}
	mod := f()
	deps := mod.Requires()
	for _, dep := range deps {
		if err := p.load(dep, append(stack, name)); err != nil {
			return fmt.Errorf("core: loading %s (required by %s): %w", dep, name, err)
		}
	}
	if err := mod.Init(p); err != nil {
		return fmt.Errorf("core: initializing %s: %w", name, err)
	}
	p.mu.Lock()
	// The process may have been shut down while Init blocked (Shutdown
	// does not take the module lock, so it can run under a parked load):
	// don't register into a dead process — stop the module instead.
	if p.down {
		p.mu.Unlock()
		_ = mod.Stop()
		return fmt.Errorf("core: process on %s shut down while loading %s", p.node.Name, name)
	}
	p.modules[name] = &moduleState{mod: mod, deps: deps}
	p.mu.Unlock()
	p.fireModuleEvent(ModuleEvent{Op: "load", Module: name})
	return nil
}

// Unload stops and removes a module. It fails while other loaded modules
// require it.
func (p *Process) Unload(name string) error {
	if err := p.lockModules(); err != nil {
		return err
	}
	defer p.modSem.Release()
	return p.unload(name, false)
}

// UnloadCascade stops and removes a module together with every loaded
// module that (transitively) requires it, dependents first — the
// dependency-aware mirror of Load's requirement resolution.
func (p *Process) UnloadCascade(name string) error {
	if err := p.lockModules(); err != nil {
		return err
	}
	defer p.modSem.Release()
	return p.unload(name, true)
}

func (p *Process) unload(name string, cascade bool) error {
	p.mu.Lock()
	if _, ok := p.modules[name]; !ok {
		p.mu.Unlock()
		return fmt.Errorf("core: module %q not loaded", name)
	}
	// victims is name plus, under cascade, its transitive dependents.
	victims := map[string]*moduleState{name: p.modules[name]}
	if cascade {
		for changed := true; changed; {
			changed = false
			for other, os := range p.modules {
				if _, in := victims[other]; in {
					continue
				}
				for _, dep := range os.deps {
					if _, in := victims[dep]; in {
						victims[other] = os
						changed = true
						break
					}
				}
			}
		}
	} else {
		for other, os := range p.modules {
			for _, dep := range os.deps {
				if dep == name {
					p.mu.Unlock()
					return fmt.Errorf("core: module %q is required by %q", name, other)
				}
			}
		}
	}
	for n := range victims {
		delete(p.modules, n)
	}
	p.mu.Unlock()
	var errs []error
	for _, n := range topoStopOrder(victims) {
		if err := victims[n].mod.Stop(); err != nil {
			errs = append(errs, fmt.Errorf("core: stopping %s: %w", n, err))
		}
		p.fireModuleEvent(ModuleEvent{Op: "unload", Module: n})
	}
	return errors.Join(errs...)
}

// Modules returns the loaded module names, sorted.
func (p *Process) Modules() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.modules))
	for n := range p.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Services returns the VLink service names currently registered by this
// process, sorted; empty when no linker was created yet. This is what the
// gatekeeper publishes to the grid-wide registry.
func (p *Process) Services() []string {
	p.mu.Lock()
	ln := p.linker
	p.mu.Unlock()
	if ln == nil {
		return nil
	}
	return ln.Services()
}

// ORBServices maps the name of each ORB profile running in this process to
// its GIOP service name.
func (p *Process) ORBServices() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.orbs))
	for name, o := range p.orbs {
		out[name] = o.Service()
	}
	return out
}

// Loaded reports whether a module is loaded.
func (p *Process) Loaded(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.modules[name]
	return ok
}

// Drainer is an optional Module refinement: Drain runs during the clean
// half of Process.Close, before any module stops and while the process's
// links are still up, so a module can deregister from grid-wide services
// (e.g. the gatekeeper withdrawing this process's registry entries).
// Drain must tolerate unreachable peers — it is best effort.
type Drainer interface {
	Drain()
}

// Close is the clean counterpart of Shutdown: modules implementing
// Drainer first get to deregister from grid services (dependents before
// dependencies, like the stop order), then the process shuts down. A
// crashed process — one that calls Shutdown directly, or nothing at all —
// skips draining and relies on soft-state expiry instead.
func (p *Process) Close() {
	p.drain()
	p.Shutdown()
}

// drain runs every Drainer module, dependents first, while the process's
// links are still up. Draining a down process is a no-op.
func (p *Process) drain() {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return
	}
	mods := make(map[string]*moduleState, len(p.modules))
	for n, st := range p.modules {
		mods[n] = st
	}
	p.mu.Unlock()
	for _, name := range topoStopOrder(mods) {
		if d, ok := mods[name].mod.(Drainer); ok {
			d.Drain()
		}
	}
}

// Shutdown stops every module (dependents before dependencies), the ORBs,
// the linker and the progress loops.
func (p *Process) Shutdown() {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return
	}
	p.down = true
	mods := make(map[string]*moduleState, len(p.modules))
	for n, st := range p.modules {
		mods[n] = st
	}
	p.modules = make(map[string]*moduleState)
	orbs := p.orbs
	p.orbs = nil
	ln := p.linker
	p.mu.Unlock()

	for _, name := range topoStopOrder(mods) {
		_ = mods[name].mod.Stop()
	}
	for _, o := range orbs {
		o.Shutdown()
	}
	if ln != nil {
		ln.Close()
	}
	p.mgr.StopAll()
}

// topoStopOrder orders modules so dependents stop before dependencies.
func topoStopOrder(mods map[string]*moduleState) []string {
	var order []string
	visited := make(map[string]bool)
	var visit func(string)
	visit = func(n string) {
		if visited[n] {
			return
		}
		visited[n] = true
		// Stop everything that depends on n first.
		for other, st := range mods {
			for _, dep := range st.deps {
				if dep == n {
					visit(other)
				}
			}
		}
		order = append(order, n)
	}
	names := make([]string, 0, len(mods))
	for n := range mods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		visit(n)
	}
	return order
}
