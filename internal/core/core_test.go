package core

import (
	"errors"
	"testing"

	"padico/internal/simnet"
)

func newTestGrid(t *testing.T, n int) (*Grid, []*simnet.Node) {
	t.Helper()
	g := NewGrid()
	nodes := g.AddNodes("n", n)
	if _, err := g.AddMyrinet("myri0", nodes); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEthernet("eth0", nodes); err != nil {
		t.Fatal(err)
	}
	return g, nodes
}

func TestLaunchAndModuleLifecycle(t *testing.T) {
	g, nodes := newTestGrid(t, 2)
	g.Run(func() {
		p, err := g.Launch(nodes[0])
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		if _, err := g.Launch(nodes[0]); err == nil {
			t.Fatal("double launch succeeded")
		}
		// Loading CORBA pulls vlink in as a dependency.
		if err := p.Load("corba:" + simnet.OmniORB3.Name); err != nil {
			t.Fatalf("load corba: %v", err)
		}
		if !p.Loaded("vlink") {
			t.Fatal("dependency vlink not loaded")
		}
		mods := p.Modules()
		if len(mods) != 2 {
			t.Fatalf("modules = %v", mods)
		}
		// vlink cannot be unloaded while CORBA requires it.
		if err := p.Unload("vlink"); err == nil {
			t.Fatal("unloaded a required module")
		}
		if err := p.Unload("corba:" + simnet.OmniORB3.Name); err != nil {
			t.Fatalf("unload corba: %v", err)
		}
		if err := p.Unload("vlink"); err != nil {
			t.Fatalf("unload vlink: %v", err)
		}
		if err := p.Unload("vlink"); err == nil {
			t.Fatal("double unload succeeded")
		}
	})
}

func TestTwoORBProfilesCohabit(t *testing.T) {
	// §4.3.4: several middleware systems at the same time in one process.
	g, nodes := newTestGrid(t, 1)
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if err := p.Load("corba:" + simnet.OmniORB3.Name); err != nil {
			t.Fatalf("load omni: %v", err)
		}
		if err := p.Load("corba:" + simnet.Mico.Name); err != nil {
			t.Fatalf("load mico: %v", err)
		}
		omni, err := p.ORB(simnet.OmniORB3)
		if err != nil {
			t.Fatal(err)
		}
		mico, err := p.ORB(simnet.Mico)
		if err != nil {
			t.Fatal(err)
		}
		if omni == mico {
			t.Fatal("profiles share one ORB")
		}
		// Idempotent per profile.
		again, _ := p.ORB(simnet.Mico)
		if again != mico {
			t.Fatal("ORB not cached per profile")
		}
	})
}

func TestUnknownAndCyclicModules(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if err := p.Load("nonexistent"); err == nil {
			t.Fatal("loaded unknown module")
		}
		RegisterModuleType("cycleA", func() Module {
			return &FuncModule{ModName: "cycleA", Deps: []string{"cycleB"}}
		})
		RegisterModuleType("cycleB", func() Module {
			return &FuncModule{ModName: "cycleB", Deps: []string{"cycleA"}}
		})
		if err := p.Load("cycleA"); err == nil {
			t.Fatal("dependency cycle loaded")
		}
	})
}

func TestFuncModuleAndStopOrder(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	var stops []string
	RegisterModuleType("base", func() Module {
		return &FuncModule{ModName: "base",
			OnStop: func() error { stops = append(stops, "base"); return nil }}
	})
	RegisterModuleType("app", func() Module {
		return &FuncModule{ModName: "app", Deps: []string{"base"},
			OnStop: func() error { stops = append(stops, "app"); return nil }}
	})
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if err := p.Load("app"); err != nil {
			t.Fatalf("load: %v", err)
		}
		p.Shutdown()
		p.Shutdown() // idempotent
	})
	if len(stops) != 2 || stops[0] != "app" || stops[1] != "base" {
		t.Fatalf("stop order = %v (dependents must stop first)", stops)
	}
}

func TestModuleInitErrorPropagates(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	boom := errors.New("boom")
	RegisterModuleType("exploder", func() Module {
		return &FuncModule{ModName: "exploder", OnInit: func(*Process) error { return boom }}
	})
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if err := p.Load("exploder"); !errors.Is(err, boom) {
			t.Fatalf("load err = %v", err)
		}
		if p.Loaded("exploder") {
			t.Fatal("failed module counted as loaded")
		}
	})
}

func TestProcessAccessors(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if p.Node() != nodes[0] || p.Grid() != g {
			t.Fatal("accessors broken")
		}
		if p.Runtime() == nil || p.Manager() == nil || p.Repo() == nil {
			t.Fatal("nil facilities")
		}
		if p.Linker() != p.Linker() {
			t.Fatal("linker not cached")
		}
		if _, ok := g.Process(nodes[0].Name); !ok {
			t.Fatal("process lookup failed")
		}
	})
}
