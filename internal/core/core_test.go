package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"padico/internal/simnet"
	"padico/internal/vtime"
)

func newTestGrid(t *testing.T, n int) (*Grid, []*simnet.Node) {
	t.Helper()
	g := NewGrid()
	nodes := g.AddNodes("n", n)
	if _, err := g.AddMyrinet("myri0", nodes); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEthernet("eth0", nodes); err != nil {
		t.Fatal(err)
	}
	return g, nodes
}

func TestLaunchAndModuleLifecycle(t *testing.T) {
	g, nodes := newTestGrid(t, 2)
	g.Run(func() {
		p, err := g.Launch(nodes[0])
		if err != nil {
			t.Fatalf("launch: %v", err)
		}
		if _, err := g.Launch(nodes[0]); err == nil {
			t.Fatal("double launch succeeded")
		}
		// Loading CORBA pulls vlink in as a dependency.
		if err := p.Load("corba:" + simnet.OmniORB3.Name); err != nil {
			t.Fatalf("load corba: %v", err)
		}
		if !p.Loaded("vlink") {
			t.Fatal("dependency vlink not loaded")
		}
		mods := p.Modules()
		if len(mods) != 2 {
			t.Fatalf("modules = %v", mods)
		}
		// vlink cannot be unloaded while CORBA requires it.
		if err := p.Unload("vlink"); err == nil {
			t.Fatal("unloaded a required module")
		}
		if err := p.Unload("corba:" + simnet.OmniORB3.Name); err != nil {
			t.Fatalf("unload corba: %v", err)
		}
		if err := p.Unload("vlink"); err != nil {
			t.Fatalf("unload vlink: %v", err)
		}
		if err := p.Unload("vlink"); err == nil {
			t.Fatal("double unload succeeded")
		}
	})
}

func TestTwoORBProfilesCohabit(t *testing.T) {
	// §4.3.4: several middleware systems at the same time in one process.
	g, nodes := newTestGrid(t, 1)
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if err := p.Load("corba:" + simnet.OmniORB3.Name); err != nil {
			t.Fatalf("load omni: %v", err)
		}
		if err := p.Load("corba:" + simnet.Mico.Name); err != nil {
			t.Fatalf("load mico: %v", err)
		}
		omni, err := p.ORB(simnet.OmniORB3)
		if err != nil {
			t.Fatal(err)
		}
		mico, err := p.ORB(simnet.Mico)
		if err != nil {
			t.Fatal(err)
		}
		if omni == mico {
			t.Fatal("profiles share one ORB")
		}
		// Idempotent per profile.
		again, _ := p.ORB(simnet.Mico)
		if again != mico {
			t.Fatal("ORB not cached per profile")
		}
	})
}

func TestUnknownAndCyclicModules(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if err := p.Load("nonexistent"); err == nil {
			t.Fatal("loaded unknown module")
		}
		RegisterModuleType("cycleA", func() Module {
			return &FuncModule{ModName: "cycleA", Deps: []string{"cycleB"}}
		})
		RegisterModuleType("cycleB", func() Module {
			return &FuncModule{ModName: "cycleB", Deps: []string{"cycleA"}}
		})
		if err := p.Load("cycleA"); err == nil {
			t.Fatal("dependency cycle loaded")
		}
	})
}

func TestFuncModuleAndStopOrder(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	var stops []string
	RegisterModuleType("base", func() Module {
		return &FuncModule{ModName: "base",
			OnStop: func() error { stops = append(stops, "base"); return nil }}
	})
	RegisterModuleType("app", func() Module {
		return &FuncModule{ModName: "app", Deps: []string{"base"},
			OnStop: func() error { stops = append(stops, "app"); return nil }}
	})
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if err := p.Load("app"); err != nil {
			t.Fatalf("load: %v", err)
		}
		p.Shutdown()
		p.Shutdown() // idempotent
	})
	if len(stops) != 2 || stops[0] != "app" || stops[1] != "base" {
		t.Fatalf("stop order = %v (dependents must stop first)", stops)
	}
}

func TestModuleInitErrorPropagates(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	boom := errors.New("boom")
	RegisterModuleType("exploder", func() Module {
		return &FuncModule{ModName: "exploder", OnInit: func(*Process) error { return boom }}
	})
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if err := p.Load("exploder"); !errors.Is(err, boom) {
			t.Fatalf("load err = %v", err)
		}
		if p.Loaded("exploder") {
			t.Fatal("failed module counted as loaded")
		}
	})
}

func TestProcessAccessors(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if p.Node() != nodes[0] || p.Grid() != g {
			t.Fatal("accessors broken")
		}
		if p.Runtime() == nil || p.Manager() == nil || p.Repo() == nil {
			t.Fatal("nil facilities")
		}
		if p.Linker() != p.Linker() {
			t.Fatal("linker not cached")
		}
		if _, ok := g.Process(nodes[0].Name); !ok {
			t.Fatal("process lookup failed")
		}
	})
}

func TestUnloadCascade(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	var stops []string
	mk := func(name string, deps ...string) {
		RegisterModuleType(name, func() Module {
			return &FuncModule{ModName: name, Deps: deps,
				OnStop: func() error { stops = append(stops, name); return nil }}
		})
	}
	// leaf ← mid ← top, plus an unrelated sibling of mid.
	mk("casc-leaf")
	mk("casc-mid", "casc-leaf")
	mk("casc-top", "casc-mid")
	mk("casc-side", "casc-leaf")
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		for _, m := range []string{"casc-top", "casc-side"} {
			if err := p.Load(m); err != nil {
				t.Fatalf("load %s: %v", m, err)
			}
		}
		// Plain unload of a required module still refuses.
		if err := p.Unload("casc-mid"); err == nil {
			t.Fatal("unloaded a required module")
		}
		// Cascade takes mid and its dependent top, dependents first,
		// leaving leaf (still required by side) and side alone.
		if err := p.UnloadCascade("casc-mid"); err != nil {
			t.Fatalf("cascade: %v", err)
		}
		if len(stops) != 2 || stops[0] != "casc-top" || stops[1] != "casc-mid" {
			t.Fatalf("cascade stop order = %v", stops)
		}
		if !p.Loaded("casc-leaf") || !p.Loaded("casc-side") {
			t.Fatalf("cascade overshot: %v", p.Modules())
		}
		// Cascading the leaf now takes everything that remains.
		if err := p.UnloadCascade("casc-leaf"); err != nil {
			t.Fatalf("cascade leaf: %v", err)
		}
		if len(p.Modules()) != 0 {
			t.Fatalf("modules left: %v", p.Modules())
		}
	})
}

// TestConcurrentLoadUnload hammers one process's module table from many
// actors (run under -race in CI): whole load/unload operations serialize,
// every module initializes exactly once, and the final table is coherent.
func TestConcurrentLoadUnload(t *testing.T) {
	g, nodes := newTestGrid(t, 2)
	var inits atomic.Int64
	RegisterModuleType("counted", func() Module {
		return &FuncModule{ModName: "counted",
			OnInit: func(*Process) error { inits.Add(1); return nil }}
	})
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		wg := vtime.NewWaitGroup(g.Sim, "churn")
		// Half the actors churn the soap middleware (a real module with a
		// listener), half race to load the same counted module.
		for i := 0; i < 4; i++ {
			wg.Add(2)
			g.Sim.Go("churn", func() {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					if err := p.Load("soap"); err != nil {
						t.Errorf("load soap: %v", err)
						return
					}
					// Unload may race with another actor's unload; only
					// "not loaded" is acceptable as a failure.
					if err := p.Unload("soap"); err != nil &&
						!strings.Contains(err.Error(), "not loaded") {
						t.Errorf("unload soap: %v", err)
						return
					}
				}
			})
			g.Sim.Go("race-load", func() {
				defer wg.Done()
				if err := p.Load("counted"); err != nil {
					t.Errorf("load counted: %v", err)
				}
			})
		}
		if err := wg.Wait(); err != nil {
			t.Fatal(err)
		}
		if got := inits.Load(); got != 1 {
			t.Fatalf("counted module initialized %d times", got)
		}
		if !p.Loaded("vlink") || !p.Loaded("counted") {
			t.Fatalf("final modules = %v", p.Modules())
		}
		// The table still works after the churn.
		if err := p.Load("soap"); err != nil {
			t.Fatalf("load after churn: %v", err)
		}
	})
}

func TestServiceAccessors(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		if s := p.Services(); s != nil {
			t.Fatalf("services before linker = %v", s)
		}
		if err := p.Load("soap"); err != nil {
			t.Fatal(err)
		}
		if s := p.Services(); len(s) != 1 || s[0] != "soap:sys" {
			t.Fatalf("services = %v", s)
		}
		if _, err := p.ORB(simnet.Mico); err != nil {
			t.Fatal(err)
		}
		orbs := p.ORBServices()
		if orbs[simnet.Mico.Name] != "giop" {
			t.Fatalf("orb services = %v", orbs)
		}
	})
}

func TestBuiltinMiddlewareModules(t *testing.T) {
	g, nodes := newTestGrid(t, 1)
	g.Run(func() {
		p, _ := g.Launch(nodes[0])
		for _, m := range []string{"soap", "hla", "mpi"} {
			if err := p.Load(m); err != nil {
				t.Fatalf("load %s: %v", m, err)
			}
		}
		mods := p.Modules()
		if len(mods) != 4 { // + vlink dependency
			t.Fatalf("modules = %v", mods)
		}
		for _, m := range []string{"soap", "hla", "mpi"} {
			if err := p.Unload(m); err != nil {
				t.Fatalf("unload %s: %v", m, err)
			}
		}
	})
}
