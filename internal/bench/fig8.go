package bench

import (
	"fmt"
	"time"

	"padico/internal/gridccm"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

const gridccmIDL = `
module Bench {
    typedef sequence<long> LongVec;
    interface Parallel { void op(in LongVec v); };
};
`

const gridccmXML = `
<parallel component="BenchComp">
  <port name="p">
    <operation name="op"><argument name="v" distribution="block"/></operation>
  </port>
</parallel>`

// barrierServant runs MPI_Barrier inside the operation, the exact workload
// of Figure 8 ("the invoked operation only contains a MPI_Barrier").
type barrierServant struct{ comm *mpi.Comm }

func (b *barrierServant) Invoke(op string, args []any) ([]any, error) {
	if b.comm != nil {
		if err := b.comm.Barrier(); err != nil {
			return nil, err
		}
	}
	return []any{}, nil
}

// gridccmSetup builds an n→n parallel pair on 2n nodes and returns the
// client-side parallel references.
func gridccmSetup(tb *testbed, n int, profile simnet.ORBProfile) []*gridccm.ParallelRef {
	desc, err := gridccm.ParseParallelDesc([]byte(gridccmXML))
	if err != nil {
		panic(err)
	}
	port, _ := desc.Port("p")

	mkORB := func(i int) *orb.ORB { return tb.newORBIDL(i, profile, gridccmIDL) }

	serverNodes := tb.nodes[n : 2*n]
	clientNodes := tb.nodes[:n]
	servedCh := make(chan *gridccm.ServedParallel, n)
	wg := vtime.NewWaitGroup(tb.sim, "serve")
	for r := 0; r < n; r++ {
		wg.Add(1)
		tb.sim.Go("server-member", func() {
			defer wg.Done()
			var comm *mpi.Comm
			if n > 1 {
				var err error
				comm, err = mpi.Join(tb.arb, "fig8srv", serverNodes, r)
				if err != nil {
					panic(err)
				}
				tb.addCleanup(comm.Free)
			}
			served, err := gridccm.Serve(gridccm.Member{
				ORB: mkORB(n + r), Comm: comm, Rank: r, Size: n, Node: tb.nodes[n+r],
			}, "bench", "Bench::Parallel", port, &barrierServant{comm: comm})
			if err != nil {
				panic(err)
			}
			servedCh <- served
		})
	}
	_ = wg.Wait()
	served := <-servedCh

	refs := make([]*gridccm.ParallelRef, n)
	wg2 := vtime.NewWaitGroup(tb.sim, "bind")
	for r := 0; r < n; r++ {
		wg2.Add(1)
		tb.sim.Go("client-member", func() {
			defer wg2.Done()
			var comm *mpi.Comm
			if n > 1 {
				var err error
				comm, err = mpi.Join(tb.arb, "fig8cli", clientNodes, r)
				if err != nil {
					panic(err)
				}
				tb.addCleanup(comm.Free)
			}
			ref, err := gridccm.Bind(gridccm.Member{
				ORB: mkORB(r), Comm: comm, Rank: r, Size: n, Node: tb.nodes[r],
			}, "fig8client", "Bench::Parallel", port, served.Derived)
			if err != nil {
				panic(err)
			}
			refs[r] = ref
		})
	}
	_ = wg2.Wait()
	return refs
}

// gridccmInvoke performs one collective invocation of total elements and
// returns the virtual wall time of the whole invocation.
func gridccmInvoke(tb *testbed, refs []*gridccm.ParallelRef, total int) time.Duration {
	n := len(refs)
	start := tb.sim.Now()
	wg := vtime.NewWaitGroup(tb.sim, "invoke")
	for r := 0; r < n; r++ {
		wg.Add(1)
		tb.sim.Go("invoker", func() {
			defer wg.Done()
			cnt := blockCount(total, n, r)
			chunk := make([]int32, cnt)
			err := refs[r].Invoke("op", gridccm.Distributed{Total: total, Chunk: chunk})
			if err != nil {
				panic(err)
			}
		})
	}
	_ = wg.Wait()
	return time.Duration(tb.sim.Now().Sub(start))
}

func blockCount(total, parts, p int) int {
	q, r := total/parts, total%parts
	if p < r {
		return q + 1
	}
	return q
}

// Fig8GridCCM reproduces Figure 8: latency and aggregate bandwidth between
// two parallel components over Myrinet-2000 with the MicoCCM-based
// GridCCM, for 1/2/4/8 nodes a side.
func Fig8GridCCM() Result {
	res := Result{ID: "fig8", Title: "GridCCM n→n over Myrinet-2000, MicoCCM (Figure 8)"}
	paperLat := map[int]float64{1: 62, 2: 93, 4: 123, 8: 148}
	paperBW := map[int]float64{1: 43, 2: 76, 4: 144, 8: 280}
	for _, n := range []int{1, 2, 4, 8} {
		tb := newTestbed(2*n, true, false)
		var lat, agg float64
		tb.run(func() {
			refs := gridccmSetup(tb, n, simnet.Mico)
			gridccmInvoke(tb, refs, n) // warm-up
			// Latency: half round trip of a minimal invocation.
			const iters = 4
			var sum time.Duration
			for i := 0; i < iters; i++ {
				sum += gridccmInvoke(tb, refs, n)
			}
			lat = float64(sum.Microseconds()) / (2 * iters)
			// Aggregate bandwidth: one 4 M-element (16 MB) vector.
			const totalBytes = 4 << 20 // elements; 4 bytes each
			d := gridccmInvoke(tb, refs, totalBytes)
			agg = mbps(totalBytes*4, d)
		})
		res.Meas = append(res.Meas,
			Measurement{Name: fmt.Sprintf("%d to %d latency", n, n), Value: lat, Unit: "µs", Paper: paperLat[n]},
			Measurement{Name: fmt.Sprintf("%d to %d aggregate bandwidth", n, n), Value: agg, Unit: "MB/s", Paper: paperBW[n]},
		)
	}
	return res
}

// EthernetScaling reproduces §4.4's last paragraph: GridCCM bandwidth
// scaling on Fast Ethernet with MicoCCM and OpenCCM (Java), 1→8 nodes.
func EthernetScaling() Result {
	res := Result{ID: "eth", Title: "GridCCM bandwidth scaling on Fast-Ethernet (§4.4)"}
	paper := map[string]map[int]float64{
		simnet.Mico.Name:        {1: 9.8, 8: 78.4},
		simnet.OpenCCMJava.Name: {1: 8.3, 8: 66.4},
	}
	for _, profile := range []simnet.ORBProfile{simnet.Mico, simnet.OpenCCMJava} {
		for _, n := range []int{1, 2, 4, 8} {
			tb := newTestbed(2*n, false, true)
			var agg float64
			tb.run(func() {
				refs := gridccmSetup(tb, n, profile)
				gridccmInvoke(tb, refs, n) // warm-up
				const totalElems = 1 << 20 // 4 MB total
				d := gridccmInvoke(tb, refs, totalElems)
				agg = mbps(totalElems*4, d)
			})
			res.Meas = append(res.Meas, Measurement{
				Name:  fmt.Sprintf("%s %d to %d", profile.Name, n, n),
				Value: agg, Unit: "MB/s", Paper: paper[profile.Name][n],
			})
		}
	}
	return res
}
