package bench

import (
	"fmt"
	"sort"
	"time"

	"padico/internal/deploy"
	"padico/internal/gatekeeper"
)

// Artifact is one committed benchmark artifact (BENCH_*.json): a named set
// of values measured against a live loopback grid — real padico-d daemons
// on real TCP, no simulation — written by `padico-bench -out`.
type Artifact struct {
	Name    string             `json:"name"`
	Grid    string             `json:"grid"`
	Iters   int                `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// observabilityIters is the per-measurement iteration count. Small enough
// to keep CI fast, large enough for stable p99 on loopback.
const observabilityIters = 200

const benchGrid = "3 daemons, replicas on b0+b1, loopback TCP"

// benchTrio boots the canonical live bench grid (the same shape the wall
// e2e tests use): three daemons in two zones, registry replicas on the
// first two, addresses seeded replica-first.
func benchTrio() (ds [3]*deploy.Daemon, err error) {
	const (
		lease = 500 * time.Millisecond
		syncI = 50 * time.Millisecond
	)
	regs := []string{"b0", "b1"}
	peers := map[string]string{}
	zones := [3]string{"a", "b", "b"}
	for i := range ds {
		node := fmt.Sprintf("b%d", i)
		ds[i], err = deploy.StartDaemon(deploy.DaemonConfig{
			Node: node, Zone: zones[i], Registries: regs,
			Peers: peers, LeaseTTL: lease, SyncInterval: syncI,
		})
		if err != nil {
			for _, d := range ds {
				if d != nil {
					d.Close()
				}
			}
			return ds, err
		}
		peers[node] = ds[i].Addr()
	}
	return ds, nil
}

// attachWhenAnnounced attaches a seat through the first daemon and waits
// until every daemon's lease landed in the registry, so measurements never
// race the grid's own boot.
func attachWhenAnnounced(addr string, nodes int) (*deploy.WallDeployment, error) {
	dep, err := deploy.Attach([]string{addr})
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		entries, err := dep.Registry().Lookup("module", "vlink")
		if err == nil && len(entries) >= nodes {
			return dep, nil
		}
		if time.Now().After(deadline) {
			dep.Close()
			return nil, fmt.Errorf("bench: grid not announced after 10s (%d/%d)", len(entries), nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// percentile returns the q-quantile of sorted durations, in nanoseconds.
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i])
}

// timeOps runs fn iters times and returns (mean ns/op, sorted samples).
func timeOps(iters int, fn func() error) (float64, []time.Duration, error) {
	samples := make([]time.Duration, 0, iters)
	var total time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, nil, err
		}
		d := time.Since(start)
		samples = append(samples, d)
		total += d
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return float64(total.Nanoseconds()) / float64(iters), samples, nil
}

// RegistryArtifact measures the replicated registry from an attached seat:
// name-resolution latency with the client cache cold (every resolve is a
// real TCP round trip to a replica) and warm (served from the seat's
// cache), plus anti-entropy convergence — how long a freshly published
// service takes to appear on every replica. It then runs the sharded
// registry-load benchmark (see registryLoad) with loadEntries directory
// entries and merges its metrics — announce throughput batched vs
// unbatched, loaded-lookup p99, post-crash convergence — into the same
// artifact.
func RegistryArtifact(loadEntries int) (Artifact, error) {
	a := Artifact{Name: "registry", Grid: benchGrid, Iters: observabilityIters,
		Metrics: map[string]float64{}}
	ds, err := benchTrio()
	if err != nil {
		return a, err
	}
	defer func() {
		for _, d := range ds {
			d.Close()
		}
	}()
	dep, err := attachWhenAnnounced(ds[0].Addr(), len(ds))
	if err != nil {
		return a, err
	}
	defer dep.Close()
	rc := dep.Registry()

	// Convergence first — it also publishes the dialable service the
	// resolve benchmarks target. Hot-load soap into the replica-less daemon
	// (its lease re-announce publishes soap:sys) and clock how long until
	// BOTH replicas answer for it: the anti-entropy path, not just the
	// announce.
	start := time.Now()
	if _, err := dep.Ctl.Load("b2", "soap"); err != nil {
		return a, fmt.Errorf("bench: load soap: %w", err)
	}
	deadline := start.Add(10 * time.Second)
	for {
		n := 0
		for _, rep := range []string{"b0", "b1"} {
			if entries, err := rc.LookupAt(rep, "vlink", "soap:sys"); err == nil && len(entries) > 0 {
				n++
			}
		}
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			return a, fmt.Errorf("bench: soap:sys never converged on both replicas")
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.Metrics["sync_convergence_ms"] = float64(time.Since(start).Microseconds()) / 1000

	// Cold cache: every resolve crosses the wire to a replica.
	rc.SetCacheTTL(0)
	uncached, _, err := timeOps(observabilityIters, func() error {
		_, err := rc.Resolve("vlink", "soap:sys")
		return err
	})
	if err != nil {
		return a, fmt.Errorf("bench: uncached resolve: %w", err)
	}
	a.Metrics["resolve_uncached_ns_op"] = uncached

	// Warm cache: one priming round trip, then pure in-process lookups.
	rc.SetCacheTTL(time.Minute)
	if _, err := rc.Resolve("vlink", "soap:sys"); err != nil {
		return a, err
	}
	cached, _, err := timeOps(observabilityIters, func() error {
		_, err := rc.Resolve("vlink", "soap:sys")
		return err
	})
	if err != nil {
		return a, fmt.Errorf("bench: cached resolve: %w", err)
	}
	a.Metrics["resolve_cached_ns_op"] = cached

	// The trio grid is done; the load benchmark boots its own sharded
	// grid, so release this one first — two live grids at once just add
	// scheduler noise to the measurements.
	dep.Close()
	for _, d := range ds {
		d.Close()
	}
	load, err := registryLoad(loadEntries)
	for k, v := range load {
		a.Metrics[k] = v
	}
	if err != nil {
		return a, fmt.Errorf("bench: registry load: %w", err)
	}
	return a, nil
}

// pairedIters is the iteration count for the paired overhead measurement:
// higher than observabilityIters because the telemetry-vs-bare comparison
// gates a <5% regression budget and needs a tight p50.
const pairedIters = 600

// WallArtifact measures the live control plane over real TCP: gatekeeper
// ping round-trip mean/p50/p99, the per-request byte cost read back from
// the pinged daemon's own telemetry counters — so the artifact also proves
// the metrics op agrees with what the seat just did — and the cost of the
// span tracing layer at each sampling policy. rtt_* is measured with
// sampling OFF (the daemon default). trace_overhead_off_pct is the full
// telemetry-stack cost on that path — trace-ID mint, event-ring record,
// span sampling check, and the trace field riding the frames — relative to
// a telemetry-free controller. The two are measured INTERLEAVED in one
// loop, alternating ping for ping: block-sequential runs see the machine's
// load drift between blocks and swing the ratio by tens of percent, while
// the paired form holds it steady within a couple of points. CI gates the
// fresh rtt_p50/rtt_notel_p50 ratio against the committed artifact's —
// machine speed cancels, so the <5% budget travels across runners.
func WallArtifact() (Artifact, error) {
	a := Artifact{Name: "wall", Grid: benchGrid, Iters: observabilityIters,
		Metrics: map[string]float64{}}
	ds, err := benchTrio()
	if err != nil {
		return a, err
	}
	defer func() {
		for _, d := range ds {
			d.Close()
		}
	}()
	dep, err := attachWhenAnnounced(ds[0].Addr(), len(ds))
	if err != nil {
		return a, err
	}
	defer dep.Close()

	// Attach samples every seat root (operator commands are rare); for the
	// hot-path numbers the seat must look like a daemon: sampling off.
	dep.Telemetry().SetSpanSampling(0)
	bare := gatekeeper.NewController(dep.Wall, dep.Tr)
	defer bare.Close()
	if err := dep.Ctl.Ping("b0"); err != nil { // prime the pooled connections
		return a, fmt.Errorf("bench: wall ping: %w", err)
	}
	if err := bare.Ping("b0"); err != nil {
		return a, fmt.Errorf("bench: untelemetered ping: %w", err)
	}
	offSamples := make([]time.Duration, 0, pairedIters)
	bareSamples := make([]time.Duration, 0, pairedIters)
	var offTotal time.Duration
	for i := 0; i < pairedIters; i++ {
		t0 := time.Now()
		if err := dep.Ctl.Ping("b0"); err != nil {
			return a, fmt.Errorf("bench: wall ping: %w", err)
		}
		t1 := time.Now()
		if err := bare.Ping("b0"); err != nil {
			return a, fmt.Errorf("bench: untelemetered ping: %w", err)
		}
		offSamples = append(offSamples, t1.Sub(t0))
		bareSamples = append(bareSamples, time.Since(t1))
		offTotal += t1.Sub(t0)
	}
	sort.Slice(offSamples, func(i, j int) bool { return offSamples[i] < offSamples[j] })
	sort.Slice(bareSamples, func(i, j int) bool { return bareSamples[i] < bareSamples[j] })
	a.Metrics["rtt_mean_ns"] = float64(offTotal.Nanoseconds()) / pairedIters
	a.Metrics["rtt_p50_ns"] = percentile(offSamples, 0.50)
	a.Metrics["rtt_p99_ns"] = percentile(offSamples, 0.99)
	notelP50 := percentile(bareSamples, 0.50)
	a.Metrics["rtt_notel_p50_ns"] = notelP50
	if notelP50 > 0 {
		a.Metrics["trace_overhead_off_pct"] =
			100 * (a.Metrics["rtt_p50_ns"] - notelP50) / notelP50
	}

	// The sampled tiers: 1-in-100 (production tracing) and every root
	// (debug). Each ping now mints, annotates and buffers spans end to end.
	pingBench := func(ctl *gatekeeper.Controller) (float64, []time.Duration, error) {
		return timeOps(observabilityIters, func() error {
			return ctl.Ping("b0")
		})
	}
	dep.Telemetry().SetSpanSampling(100)
	_, sampled, err := pingBench(dep.Ctl)
	if err != nil {
		return a, fmt.Errorf("bench: 1%% sampled ping: %w", err)
	}
	a.Metrics["trace_1pct_rtt_ns"] = percentile(sampled, 0.50)
	dep.Telemetry().SetSpanSampling(1)
	_, traced, err := pingBench(dep.Ctl)
	if err != nil {
		return a, fmt.Errorf("bench: fully traced ping: %w", err)
	}
	a.Metrics["trace_on_rtt_ns"] = percentile(traced, 0.50)
	dep.Telemetry().SetSpanSampling(0)

	snap, err := dep.Ctl.Metrics("b0")
	if err != nil {
		return a, fmt.Errorf("bench: scraping b0: %w", err)
	}
	if reqs := snap.Counter("gk.requests"); reqs > 0 {
		a.Metrics["gk_bytes_in_per_req"] = float64(snap.Counter("gk.bytes_in")) / float64(reqs)
		a.Metrics["gk_bytes_out_per_req"] = float64(snap.Counter("gk.bytes_out")) / float64(reqs)
	}
	h := snap.Hist("gk.handle")
	a.Metrics["gk_handle_p99_us"] = float64(h.P99Micros)
	return a, nil
}
