package bench

import (
	"fmt"
	"time"

	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/vtime"
)

// fig7Sizes is the paper's x-axis: 32 B to 1 MB.
var fig7Sizes = []int{32, 1024, 32 * 1024, 1024 * 1024}

// fig7ORBs are the CORBA implementations of Figure 7.
var fig7ORBs = []simnet.ORBProfile{
	simnet.OmniORB3, simnet.OmniORB4, simnet.Mico, simnet.ORBacus,
}

// orbEcho measures the ORB echo bandwidth (MB/s) for one message size over
// the given testbed. The connection is warmed first.
func orbEcho(tb *testbed, client *orb.ObjRef, size, iters int) float64 {
	payload := make([]byte, size)
	start := tb.sim.Now()
	for i := 0; i < iters; i++ {
		if _, err := client.Invoke("echo", payload); err != nil {
			panic(err)
		}
	}
	rt := tb.sim.Now().Sub(start) / time.Duration(iters)
	return mbps(size, rt/2)
}

// mpiEcho measures MPI ping-pong bandwidth between ranks 0 and 1.
func mpiEcho(tb *testbed, comms []*mpi.Comm, size, iters int) float64 {
	payload := make([]byte, size)
	done := vtime.NewWaitGroup(tb.sim, "pingpong")
	var rt time.Duration
	done.Add(2)
	tb.sim.Go("rank0", func() {
		defer done.Done()
		start := tb.sim.Now()
		for i := 0; i < iters; i++ {
			if err := comms[0].Send(1, 0, payload); err != nil {
				panic(err)
			}
			if _, _, err := comms[0].Recv(1, 0); err != nil {
				panic(err)
			}
		}
		rt = tb.sim.Now().Sub(start) / time.Duration(iters)
	})
	tb.sim.Go("rank1", func() {
		defer done.Done()
		for i := 0; i < iters; i++ {
			data, _, err := comms[1].Recv(0, 0)
			if err != nil {
				panic(err)
			}
			if err := comms[1].Send(0, 0, data); err != nil {
				panic(err)
			}
		}
	})
	_ = done.Wait()
	return mbps(size, rt/2)
}

// tcpEcho measures a raw socket echo over the Ethernet device (the
// reference curve of Figure 7).
func tcpEcho(tb *testbed, size, iters int) float64 {
	dev, _ := tb.arb.Device("eth0")
	srvProv, _ := dev.Provider(tb.nodes[0])
	cliProv, _ := dev.Provider(tb.nodes[1])
	l, err := srvProv.Listen(9000)
	if err != nil {
		panic(err)
	}
	defer l.Close()
	tb.sim.Go("tcp-echo-server", func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, size)
		for {
			if err := sockets.ReadFull(c, buf); err != nil {
				return
			}
			if _, err := c.Write(buf); err != nil {
				return
			}
		}
	})
	c, err := cliProv.Dial("node0:9000")
	if err != nil {
		panic(err)
	}
	defer c.Close()
	payload := make([]byte, size)
	start := tb.sim.Now()
	for i := 0; i < iters; i++ {
		if _, err := c.Write(payload); err != nil {
			panic(err)
		}
		if err := sockets.ReadFull(c, payload); err != nil {
			panic(err)
		}
	}
	rt := tb.sim.Now().Sub(start) / time.Duration(iters)
	return mbps(size, rt/2)
}

// Fig7Bandwidth reproduces Figure 7: CORBA and MPI bandwidth on PadicoTM
// over Myrinet-2000, with the TCP/Ethernet-100 reference.
func Fig7Bandwidth() Result {
	res := Result{ID: "fig7", Title: "CORBA and MPI bandwidth on PadicoTM (Figure 7)"}
	paperPeak := map[string]float64{
		simnet.OmniORB3.Name: 240, simnet.OmniORB4.Name: 240,
		simnet.Mico.Name: 55, simnet.ORBacus.Name: 63,
	}
	// CORBA curves.
	for _, profile := range fig7ORBs {
		tb := newTestbed(2, true, true)
		tb.run(func() {
			server := tb.newORB(0, profile)
			clientORB := tb.newORB(1, profile)
			defer server.Shutdown()
			defer clientORB.Shutdown()
			ior, err := server.Activate("echo", "Bench::Echo", echoServant)
			if err != nil {
				panic(err)
			}
			ref, err := clientORB.Object(ior)
			if err != nil {
				panic(err)
			}
			orbEcho(tb, ref, 32, 1) // warm connection
			for _, size := range fig7Sizes {
				bw := orbEcho(tb, ref, size, 3)
				m := Measurement{
					Name:  fmt.Sprintf("%s/Myrinet-2000 @ %s", profile.Name, sizeLabel(size)),
					Value: bw, Unit: "MB/s",
				}
				if size == 1024*1024 {
					m.Paper = paperPeak[profile.Name]
				}
				res.Meas = append(res.Meas, m)
			}
		})
	}
	// MPI curve.
	{
		tb := newTestbed(2, true, false)
		tb.run(func() {
			comms := joinWorld(tb, 2)
			defer freeAll(comms)
			for _, size := range fig7Sizes {
				bw := mpiEcho(tb, comms, size, 3)
				m := Measurement{
					Name:  fmt.Sprintf("MPICH/Myrinet-2000 @ %s", sizeLabel(size)),
					Value: bw, Unit: "MB/s",
				}
				if size == 1024*1024 {
					m.Paper = 240
				}
				res.Meas = append(res.Meas, m)
			}
		})
	}
	// TCP/Ethernet reference.
	{
		tb := newTestbed(2, false, true)
		tb.run(func() {
			for _, size := range fig7Sizes {
				bw := tcpEcho(tb, size, 3)
				res.Meas = append(res.Meas, Measurement{
					Name:  fmt.Sprintf("TCP/Ethernet-100 @ %s", sizeLabel(size)),
					Value: bw, Unit: "MB/s",
					Footnote: "reference curve",
				})
			}
		})
	}
	return res
}

// Latency reproduces §4.4's latency figures: half round trip of a minimal
// message.
func Latency() Result {
	res := Result{ID: "lat", Title: "Latency on PadicoTM over Myrinet-2000 (§4.4)"}
	paper := map[string]float64{
		simnet.OmniORB3.Name: 20, simnet.Mico.Name: 62, simnet.ORBacus.Name: 54,
	}
	for _, profile := range fig7ORBs {
		tb := newTestbed(2, true, true)
		tb.run(func() {
			server := tb.newORB(0, profile)
			client := tb.newORB(1, profile)
			defer server.Shutdown()
			defer client.Shutdown()
			ior, _ := server.Activate("echo", "Bench::Echo", echoServant)
			ref, _ := client.Object(ior)
			orbEcho(tb, ref, 1, 1) // warm
			payload := make([]byte, 1)
			const iters = 20
			start := tb.sim.Now()
			for i := 0; i < iters; i++ {
				if _, err := ref.Invoke("echo", payload); err != nil {
					panic(err)
				}
			}
			half := tb.sim.Now().Sub(start).Microseconds()
			res.Meas = append(res.Meas, Measurement{
				Name:  profile.Name,
				Value: float64(half) / (2 * iters), Unit: "µs",
				Paper: paper[profile.Name],
			})
		})
	}
	// MPI latency.
	tb := newTestbed(2, true, false)
	tb.run(func() {
		comms := joinWorld(tb, 2)
		defer freeAll(comms)
		const iters = 20
		done := vtime.NewWaitGroup(tb.sim, "lat")
		var half float64
		done.Add(2)
		tb.sim.Go("rank0", func() {
			defer done.Done()
			start := tb.sim.Now()
			for i := 0; i < iters; i++ {
				_ = comms[0].Send(1, 0, []byte{1})
				_, _, _ = comms[0].Recv(1, 0)
			}
			half = float64(tb.sim.Now().Sub(start).Microseconds()) / (2 * iters)
		})
		tb.sim.Go("rank1", func() {
			defer done.Done()
			for i := 0; i < iters; i++ {
				_, _, _ = comms[1].Recv(0, 0)
				_ = comms[1].Send(0, 0, []byte{1})
			}
		})
		_ = done.Wait()
		res.Meas = append(res.Meas, Measurement{
			Name: "MPICH", Value: half, Unit: "µs", Paper: 11,
		})
	})
	return res
}

// Concurrent reproduces §4.4's sharing claim: CORBA and MPI streaming at
// the same time over one Myrinet NIC pair each obtain ~120 MB/s.
func Concurrent() Result {
	res := Result{ID: "concurrent", Title: "Concurrent CORBA + MPI bandwidth sharing (§4.4)"}
	tb := newTestbed(2, true, true)
	tb.run(func() {
		// Both streams flow node0 → node1 so they compete for the same
		// wire (full-duplex NICs never contend on opposite directions).
		server := tb.newORB(1, simnet.OmniORB3)
		client := tb.newORB(0, simnet.OmniORB3)
		defer server.Shutdown()
		defer client.Shutdown()
		ior, _ := server.Activate("echo", "Bench::Echo", echoServant)
		ref, _ := client.Object(ior)
		comms := joinWorld(tb, 2)
		defer freeAll(comms)
		orbEcho(tb, ref, 32, 1) // warm

		// Both middleware stream one-directionally over the same NIC
		// pair at the same time (the paper's sharing scenario): the
		// fluid model splits the wire between the two flows.
		const size = 1 << 20
		const iters = 8
		var corbaBW, mpiBW float64
		done := vtime.NewWaitGroup(tb.sim, "streams")
		done.Add(3)
		tb.sim.Go("corba-stream", func() {
			defer done.Done()
			start := tb.sim.Now()
			payload := make([]byte, size)
			for i := 0; i < iters; i++ {
				if _, err := ref.Invoke("sink", payload); err != nil {
					panic(err)
				}
			}
			corbaBW = mbps(iters*size, tb.sim.Now().Sub(start))
		})
		tb.sim.Go("mpi-stream-0", func() {
			defer done.Done()
			start := tb.sim.Now()
			payload := make([]byte, size)
			for i := 0; i < iters; i++ {
				_ = comms[0].Send(1, 0, payload)
			}
			mpiBW = mbps(iters*size, tb.sim.Now().Sub(start))
		})
		tb.sim.Go("mpi-stream-1", func() {
			defer done.Done()
			for i := 0; i < iters; i++ {
				_, _, _ = comms[1].Recv(0, 0)
			}
		})
		_ = done.Wait()
		res.Meas = append(res.Meas,
			Measurement{Name: "omniORB while sharing", Value: corbaBW, Unit: "MB/s", Paper: 120},
			Measurement{Name: "MPI while sharing", Value: mpiBW, Unit: "MB/s", Paper: 120},
		)
	})
	return res
}

func joinWorld(tb *testbed, n int) []*mpi.Comm {
	comms := make([]*mpi.Comm, n)
	wg := vtime.NewWaitGroup(tb.sim, "join")
	for i := 0; i < n; i++ {
		wg.Add(1)
		tb.sim.Go("join", func() {
			defer wg.Done()
			c, err := mpi.Join(tb.arb, "bench", tb.nodes[:n], i)
			if err != nil {
				panic(err)
			}
			comms[i] = c
		})
	}
	_ = wg.Wait()
	return comms
}

func freeAll(comms []*mpi.Comm) {
	for _, c := range comms {
		c.Free()
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1024:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
