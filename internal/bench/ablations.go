package bench

import (
	"time"

	"padico/internal/arbitration"
	"padico/internal/circuit"
	"padico/internal/madeleine"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// PadicoOverhead checks §4.4's claim that PadicoTM "adds no significant
// overhead neither for bandwidth nor for latency" over the underlying
// Madeleine library: raw Madeleine vs the full arbitration+Circuit stack
// vs MPI.
func PadicoOverhead() Result {
	res := Result{ID: "overhead", Title: "PadicoTM overhead vs raw Madeleine (§4.4)"}
	const size = 1 << 20

	// Raw Madeleine on a dedicated fabric (no arbitration).
	{
		sim := vtime.NewSim()
		net := simnet.New(sim)
		a, b := net.NewNode("a"), net.NewNode("b")
		fab := net.NewMyrinet2000("raw", []*simnet.Node{a, b})
		var lat, bw float64
		sim.Run(func() {
			ch, err := madeleine.Open(fab)
			if err != nil {
				panic(err)
			}
			defer ch.Close()
			e0, _ := ch.Endpoint(0)
			e1, _ := ch.Endpoint(1)
			done := vtime.NewWaitGroup(sim, "echo")
			done.Add(1)
			sim.Go("echoer", func() {
				defer done.Done()
				for {
					d, err := e1.Recv()
					if err != nil {
						return
					}
					if len(d.Msg.Payload) == 0 && len(d.Msg.Header) == 0 {
						return
					}
					if err := e1.Send(0, d.Msg); err != nil {
						return
					}
				}
			})
			const iters = 10
			start := sim.Now()
			for i := 0; i < iters; i++ {
				_ = e0.Send(1, madeleine.Message{Header: []byte{1}})
				_, _ = e0.Recv()
			}
			lat = float64(sim.Now().Sub(start).Microseconds()) / (2 * iters)
			start = sim.Now()
			payload := make([]byte, size)
			for i := 0; i < 3; i++ {
				_ = e0.Send(1, madeleine.Message{Payload: payload})
				_, _ = e0.Recv()
			}
			bw = mbps(size, sim.Now().Sub(start)/(3*2))
			ch.Close()
			_ = done.Wait()
		})
		res.Meas = append(res.Meas,
			Measurement{Name: "raw Madeleine latency", Value: lat, Unit: "µs"},
			Measurement{Name: "raw Madeleine bandwidth", Value: bw, Unit: "MB/s"},
		)
	}

	// Full PadicoTM stack: arbitration + Circuit.
	{
		tb := newTestbed(2, true, false)
		var lat, bw float64
		tb.run(func() {
			cs := make([]*circuit.Circuit, 2)
			wg := vtime.NewWaitGroup(tb.sim, "open")
			for i := 0; i < 2; i++ {
				wg.Add(1)
				tb.sim.Go("open", func() {
					defer wg.Done()
					c, err := circuit.Open(tb.arb, "overhead", tb.nodes, i)
					if err != nil {
						panic(err)
					}
					cs[i] = c
				})
			}
			_ = wg.Wait()
			done := vtime.NewWaitGroup(tb.sim, "echo")
			done.Add(1)
			tb.sim.Go("echoer", func() {
				defer done.Done()
				for {
					m, err := cs[1].Recv()
					if err != nil {
						return
					}
					if err := cs[1].Send(0, m.Header, m.Payload); err != nil {
						return
					}
				}
			})
			const iters = 10
			start := tb.sim.Now()
			for i := 0; i < iters; i++ {
				_ = cs[0].Send(1, []byte{1}, nil)
				_, _ = cs[0].Recv()
			}
			lat = float64(tb.sim.Now().Sub(start).Microseconds()) / (2 * iters)
			start = tb.sim.Now()
			payload := make([]byte, size)
			for i := 0; i < 3; i++ {
				_ = cs[0].Send(1, nil, payload)
				_, _ = cs[0].Recv()
			}
			bw = mbps(size, tb.sim.Now().Sub(start)/(3*2))
			for _, c := range cs {
				c.Close()
			}
			_ = done.Wait()
		})
		res.Meas = append(res.Meas,
			Measurement{Name: "PadicoTM Circuit latency", Value: lat, Unit: "µs",
				Footnote: "arbitrated, multiplexed"},
			Measurement{Name: "PadicoTM Circuit bandwidth", Value: bw, Unit: "MB/s"},
		)
	}

	// MPI on top of the stack (paper: 11 µs / 240 MB/s).
	{
		tb := newTestbed(2, true, false)
		var lat, bw float64
		tb.run(func() {
			comms := joinWorld(tb, 2)
			defer freeAll(comms)
			done := vtime.NewWaitGroup(tb.sim, "echo")
			done.Add(2)
			const iters = 10
			tb.sim.Go("rank0", func() {
				defer done.Done()
				start := tb.sim.Now()
				for i := 0; i < iters; i++ {
					_ = comms[0].Send(1, 0, []byte{1})
					_, _, _ = comms[0].Recv(1, 0)
				}
				lat = float64(tb.sim.Now().Sub(start).Microseconds()) / (2 * iters)
				start = tb.sim.Now()
				payload := make([]byte, size)
				for i := 0; i < 3; i++ {
					_ = comms[0].Send(1, 0, payload)
					_, _, _ = comms[0].Recv(1, 0)
				}
				bw = mbps(size, tb.sim.Now().Sub(start)/(3*2))
			})
			tb.sim.Go("rank1", func() {
				defer done.Done()
				for i := 0; i < iters+3; i++ {
					data, _, err := comms[1].Recv(0, 0)
					if err != nil {
						return
					}
					_ = comms[1].Send(0, 0, data)
				}
			})
			_ = done.Wait()
		})
		res.Meas = append(res.Meas,
			Measurement{Name: "MPI latency", Value: lat, Unit: "µs", Paper: 11},
			Measurement{Name: "MPI bandwidth", Value: bw, Unit: "MB/s", Paper: 240},
		)
	}
	return res
}

// CrossParadigm exercises §4.3.2's mappings: the parallel abstraction over
// sockets and the distributed abstraction over the SAN, against their
// straight counterparts.
func CrossParadigm() Result {
	res := Result{ID: "cross", Title: "Straight vs cross-paradigm mappings (§4.3.2)"}
	const size = 1 << 20

	// Circuit: straight (Myrinet) vs cross-paradigm (framed TCP mesh).
	for _, devName := range []string{"myri0", "eth0"} {
		tb := newTestbed(2, true, true)
		var bw float64
		var mapping string
		tb.run(func() {
			dev, _ := tb.arb.Device(devName)
			cs := make([]*circuit.Circuit, 2)
			wg := vtime.NewWaitGroup(tb.sim, "open")
			for i := 0; i < 2; i++ {
				wg.Add(1)
				tb.sim.Go("open", func() {
					defer wg.Done()
					c, err := circuit.OpenOn(tb.arb, dev, "xp", tb.nodes, i)
					if err != nil {
						panic(err)
					}
					cs[i] = c
				})
			}
			_ = wg.Wait()
			mapping = cs[0].Mapping()
			done := vtime.NewWaitGroup(tb.sim, "echo")
			done.Add(1)
			tb.sim.Go("echoer", func() {
				defer done.Done()
				m, err := cs[1].Recv()
				if err != nil {
					return
				}
				_ = cs[1].Send(0, m.Header, m.Payload)
			})
			start := tb.sim.Now()
			_ = cs[0].Send(1, nil, make([]byte, size))
			_, _ = cs[0].Recv()
			bw = mbps(size, tb.sim.Now().Sub(start)/2)
			for _, c := range cs {
				c.Close()
			}
			_ = done.Wait()
		})
		res.Meas = append(res.Meas, Measurement{
			Name: "Circuit/" + devName + " (" + mapping + ")", Value: bw, Unit: "MB/s",
		})
	}

	// VLink: cross-paradigm (stream over Myrinet ports) vs straight (TCP).
	for _, devName := range []string{"myri0", "eth0"} {
		tb := newTestbed(2, true, true)
		var bw float64
		tb.run(func() {
			dev, _ := tb.arb.Device(devName)
			l, err := tb.linkers[0].Listen("xpsink")
			if err != nil {
				panic(err)
			}
			tb.sim.Go("sink", func() {
				st, err := l.Accept()
				if err != nil {
					return
				}
				buf := make([]byte, 64*1024)
				for {
					if _, err := st.Read(buf); err != nil {
						return
					}
				}
			})
			st, err := tb.linkers[1].DialOn(dev, tb.nodes[0], "xpsink")
			if err != nil {
				panic(err)
			}
			start := tb.sim.Now()
			if _, err := st.Write(make([]byte, size)); err != nil {
				panic(err)
			}
			bw = mbps(size, tb.sim.Now().Sub(start))
			st.Close()
		})
		mapping := "straight"
		if devName == "myri0" {
			mapping = "cross-paradigm"
		}
		res.Meas = append(res.Meas, Measurement{
			Name: "VLink/" + devName + " (" + mapping + ")", Value: bw, Unit: "MB/s",
		})
	}
	return res
}

// SecurityZones exercises §2/§6: encryption applies exactly on insecure
// paths under the automatic policy, and the paper's proposed optimization
// (clear text inside a parallel machine) is measurable.
func SecurityZones() Result {
	res := Result{ID: "security", Title: "Security zones: encryption policy (§2, §6)"}
	const size = 1 << 20
	measure := func(devName string, mode vlink.SecurityMode) float64 {
		sim := vtime.NewSim()
		net := simnet.New(sim)
		tb := &testbed{sim: sim, net: net, arb: arbitration.New(net)}
		tb.nodes = []*simnet.Node{net.NewNode("node0"), net.NewNode("node1")}
		if _, err := tb.arb.AddSAN(net.NewMyrinet2000("myri0", tb.nodes)); err != nil {
			panic(err)
		}
		if _, err := tb.arb.AddSock(net.NewWAN("wan0", tb.nodes, 25e6, time.Millisecond)); err != nil {
			panic(err)
		}
		for _, nd := range tb.nodes {
			tb.linkers = append(tb.linkers, vlink.NewLinker(tb.arb, nd))
		}
		var d time.Duration
		tb.run(func() {
			dev, _ := tb.arb.Device(devName)
			ln0, ln1 := tb.linkers[0], tb.linkers[1]
			ln1.Mode = mode
			l, _ := ln0.Listen("sink")
			tb.sim.Go("sink", func() {
				st, err := l.Accept()
				if err != nil {
					return
				}
				buf := make([]byte, 64*1024)
				for {
					if _, err := st.Read(buf); err != nil {
						return
					}
				}
			})
			st, err := ln1.DialOn(dev, tb.nodes[0], "sink")
			if err != nil {
				panic(err)
			}
			start := tb.sim.Now()
			if _, err := st.Write(make([]byte, size)); err != nil {
				panic(err)
			}
			d = time.Duration(tb.sim.Now().Sub(start))
			st.Close()
		})
		return mbps(size, d)
	}
	for _, c := range []struct {
		name   string
		device string
		mode   vlink.SecurityMode
	}{
		{"SAN auto (secure: clear)", "myri0", vlink.SecureAuto},
		{"SAN always-encrypt (coarse CORBA policy)", "myri0", vlink.SecureAlways},
		{"WAN auto (insecure: encrypted)", "wan0", vlink.SecureAuto},
		{"WAN never (trusted-grid baseline)", "wan0", vlink.SecureNever},
	} {
		res.Meas = append(res.Meas, Measurement{
			Name: c.name, Value: measure(c.device, c.mode), Unit: "MB/s",
		})
	}
	return res
}
