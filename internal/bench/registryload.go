package bench

import (
	"fmt"
	"time"

	"padico/internal/deploy"
	"padico/internal/gatekeeper"
)

// Registry-load benchmark parameters. The grid is two replica daemons in
// two zones hosting every shard of a loadShards-way sharded directory —
// the smallest live grid where the announce-batch framing matters: a
// publish touches all loadShards shards, which a batch-unaware client
// must send as loadShards per-shard frames while the sharded client
// coalesces them into one announce-batch per replica group.
const (
	loadShards = 32 // directory shards in the load grid
	loadFanout = 16 // entries per synthetic publisher, spread across shards

	// loadUnbatchedCap bounds the publishers replayed through the
	// unbatched baseline: per-shard framing costs loadShards round trips
	// per publish, so a sample is enough to establish the rate.
	loadUnbatchedCap = 64

	// loadLookupSamples is how many named lookups feed the p99; each one
	// routes to its owning shard and costs one round trip.
	loadLookupSamples = 512
)

// loadEntrySet builds publisher i's entry set: loadFanout entries whose
// names hash across the directory's shards.
func loadEntrySet(i int) (node string, entries []gatekeeper.Entry) {
	node = fmt.Sprintf("ld%05d", i)
	entries = make([]gatekeeper.Entry, loadFanout)
	for j := range entries {
		entries[j] = gatekeeper.Entry{
			Node: node, Kind: "bench",
			Name:    fmt.Sprintf("ld.%05d.%02d", i, j),
			Service: "bench:load",
		}
	}
	return node, entries
}

// registryLoad measures the sharded registry under a bulk directory load
// of n entries, on a live loopback grid: batched vs unbatched announce
// throughput, named-lookup p99 against the loaded directory, and how long
// a hard-killed replica takes to recover the full directory through the
// anti-entropy full-snapshot fallback after restart.
func registryLoad(n int) (map[string]float64, error) {
	m := map[string]float64{}
	// Replicas sync at the production default. A tighter interval would
	// shave the crash-convergence idle gap but makes the digest rounds —
	// O(directory) stamp maps per tick — dominate both daemons' CPU at
	// load, polluting the throughput and lookup measurements.
	const syncI = gatekeeper.DefaultSyncInterval
	zones := map[string]string{"r0": "a", "r1": "b"}
	groups := deploy.ShardPlacement(zones, loadShards)
	cfgs := map[string]deploy.DaemonConfig{}
	peers := map[string]string{}
	var ds []*deploy.Daemon
	closeAll := func() {
		for _, d := range ds {
			d.Close()
		}
	}
	for _, node := range []string{"r0", "r1"} {
		cfg := deploy.DaemonConfig{
			Node: node, Zone: zones[node], ShardGroups: groups,
			Peers: peers, SyncInterval: syncI,
		}
		d, err := deploy.StartDaemon(cfg)
		if err != nil {
			closeAll()
			return m, err
		}
		ds = append(ds, d)
		peers = map[string]string{}
		for _, prev := range ds {
			peers[prev.Node()] = prev.Addr()
		}
		cfgs[node] = cfg
	}
	defer closeAll()

	dep, err := attachWhenAnnounced(ds[0].Addr(), len(ds))
	if err != nil {
		return m, err
	}
	defer dep.Close()
	rc := dep.Registry()

	// Bulk load: every publisher's set lands as one announce-batch frame
	// per replica group (this grid has one group signature, so one frame
	// per publish), entries pre-split by shard inside the frame.
	publishers := n / loadFanout
	if publishers < 1 {
		publishers = 1
	}
	total := publishers * loadFanout
	m["load_entries"] = float64(total)
	m["load_shards"] = loadShards
	start := time.Now()
	for i := 0; i < publishers; i++ {
		node, entries := loadEntrySet(i)
		if err := rc.PublishTTL(node, entries, 0); err != nil {
			return m, fmt.Errorf("bench: bulk announce %d: %w", i, err)
		}
	}
	m["load_bulk_per_s"] = float64(total) / time.Since(start).Seconds()

	// Batched vs unbatched announce cost, matched: the same publisher
	// sample re-announced against the same fully loaded directory, first
	// as announce-batch frames, then as the per-shard OpRegPublish frames
	// a batch-unaware client must send — replacing a publisher's entry
	// set touches every shard (emptied shards must be cleared too), so
	// each unbatched publish costs loadShards round trips. Re-publishing
	// identical sets keeps the directory at exactly `total` entries.
	replay := publishers
	if replay > loadUnbatchedCap {
		replay = loadUnbatchedCap
	}
	start = time.Now()
	for i := 0; i < replay; i++ {
		node, entries := loadEntrySet(i)
		if err := rc.PublishTTL(node, entries, 0); err != nil {
			return m, fmt.Errorf("bench: batched announce %d: %w", i, err)
		}
	}
	m["announce_batched_per_s"] = float64(replay*loadFanout) / time.Since(start).Seconds()

	start = time.Now()
	for i := 0; i < replay; i++ {
		node, entries := loadEntrySet(i)
		byShard := make([][]gatekeeper.Entry, loadShards)
		for _, e := range entries {
			s := gatekeeper.ShardOf(e.Name, loadShards)
			byShard[s] = append(byShard[s], e)
		}
		for s := 0; s < loadShards; s++ {
			if err := rc.PublishShardTTL(node, s, byShard[s], 0); err != nil {
				return m, fmt.Errorf("bench: unbatched announce %d shard %d: %w", i, s, err)
			}
		}
	}
	m["announce_unbatched_per_s"] = float64(replay*loadFanout) / time.Since(start).Seconds()
	if m["announce_unbatched_per_s"] > 0 {
		m["announce_batch_speedup"] = m["announce_batched_per_s"] / m["announce_unbatched_per_s"]
	}

	// Named-lookup p99 against the loaded directory: each lookup routes
	// to its name's owning shard — one round trip regardless of shard
	// count or directory size.
	stride := publishers/loadLookupSamples + 1
	k := 0
	_, samples, err := timeOps(loadLookupSamples, func() error {
		i := (k * stride) % publishers
		name := fmt.Sprintf("ld.%05d.%02d", i, k%loadFanout)
		k++
		entries, err := rc.Lookup("bench", name)
		if err == nil && len(entries) == 0 {
			err = fmt.Errorf("bench: loaded name %s not found", name)
		}
		return err
	})
	if err != nil {
		return m, err
	}
	m["lookup_p99_us"] = percentile(samples, 0.99) / 1e3
	m["lookup_p50_us"] = percentile(samples, 0.50) / 1e3

	// Post-crash convergence: hard-kill replica r1 (no withdraw, no
	// graceful teardown), restart it empty, and clock how long the
	// anti-entropy full-snapshot fallback takes to restore every shard.
	ds[1].Kill()
	start = time.Now()
	rd, err := deploy.StartDaemon(cfgs["r1"])
	if err != nil {
		return m, fmt.Errorf("bench: restarting r1: %w", err)
	}
	ds = append(ds, rd)
	seat, err := deploy.Attach([]string{rd.Addr()})
	if err != nil {
		return m, fmt.Errorf("bench: attaching to restarted r1: %w", err)
	}
	defer seat.Close()
	deadline := start.Add(2 * time.Minute)
	for {
		st, err := seat.Registry().StatusOf("r1")
		if err == nil && st.Entries >= total {
			break
		}
		if time.Now().After(deadline) {
			got := -1
			if st != nil {
				got = st.Entries
			}
			return m, fmt.Errorf("bench: restarted replica never converged (%d/%d entries)", got, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	m["crash_convergence_ms"] = float64(time.Since(start).Microseconds()) / 1000
	return m, nil
}
