// Package bench regenerates every table and figure of the paper's
// evaluation (§4.4), plus the ablations DESIGN.md calls out. Each
// experiment builds the calibrated simulated testbed (dual-PIII-class
// nodes, Myrinet-2000, Fast Ethernet), runs the real middleware stack under
// virtual time, and reports measured values next to the paper's published
// numbers. See EXPERIMENTS.md for the recorded outcomes.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"padico/internal/arbitration"
	"padico/internal/idl"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/vlink"
	"padico/internal/vtime"
)

// Measurement is one reported value, with the paper's number when the
// paper states one (Paper == 0 means not reported).
type Measurement struct {
	Name     string
	Value    float64
	Unit     string
	Paper    float64
	Footnote string
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Meas  []Measurement
}

// Format renders the result as an aligned text table.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	name := len("measurement")
	for _, m := range r.Meas {
		if len(m.Name) > name {
			name = len(m.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %s\n", name, "measurement", "measured", "paper", "unit")
	for _, m := range r.Meas {
		paper := "-"
		if m.Paper != 0 {
			paper = fmt.Sprintf("%.1f", m.Paper)
		}
		fmt.Fprintf(&b, "%-*s  %12.1f  %12s  %s", name, m.Name, m.Value, paper, m.Unit)
		if m.Footnote != "" {
			fmt.Fprintf(&b, "  (%s)", m.Footnote)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Deviation returns the worst relative deviation from the paper's values
// (over measurements that have one).
func (r Result) Deviation() float64 {
	worst := 0.0
	for _, m := range r.Meas {
		if m.Paper == 0 {
			continue
		}
		d := (m.Value - m.Paper) / m.Paper
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// testbed is the simulated evaluation platform of §4.4.
type testbed struct {
	sim     *vtime.Sim
	net     *simnet.Net
	arb     *arbitration.Arbiter
	nodes   []*simnet.Node
	linkers []*vlink.Linker
	orbs    []*orb.ORB

	mu       sync.Mutex
	cleanups []func()
}

// addCleanup registers a teardown action (run before the stack closes).
func (tb *testbed) addCleanup(f func()) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.cleanups = append(tb.cleanups, f)
}

// newTestbed builds n nodes; san/lan select the attached fabrics.
func newTestbed(n int, san, lan bool) *testbed {
	sim := vtime.NewSim()
	net := simnet.New(sim)
	tb := &testbed{sim: sim, net: net, arb: arbitration.New(net)}
	for i := 0; i < n; i++ {
		tb.nodes = append(tb.nodes, net.NewNode(fmt.Sprintf("node%d", i)))
	}
	if san {
		if _, err := tb.arb.AddSAN(net.NewMyrinet2000("myri0", tb.nodes)); err != nil {
			panic(err)
		}
	}
	if lan {
		if _, err := tb.arb.AddSock(net.NewEthernet100("eth0", tb.nodes)); err != nil {
			panic(err)
		}
	}
	for _, nd := range tb.nodes {
		tb.linkers = append(tb.linkers, vlink.NewLinker(tb.arb, nd))
	}
	return tb
}

func (tb *testbed) close() {
	tb.mu.Lock()
	cleanups := tb.cleanups
	tb.cleanups = nil
	tb.mu.Unlock()
	for _, f := range cleanups {
		f()
	}
	tb.mu.Lock()
	orbs := tb.orbs
	tb.orbs = nil
	tb.mu.Unlock()
	for _, o := range orbs {
		o.Shutdown()
	}
	for _, ln := range tb.linkers {
		ln.Close()
	}
	tb.arb.Close()
}

// run executes body as the root actor and tears the testbed down.
func (tb *testbed) run(body func()) {
	tb.sim.Run(func() {
		defer tb.close()
		body()
	})
}

const echoIDL = `
module Bench {
    typedef sequence<octet> Blob;
    interface Echo {
        Blob echo(in Blob data);
        void sink(in Blob data);
    };
};
`

// newORB builds an ORB with the given profile on node i; it is shut down
// with the testbed.
func (tb *testbed) newORB(i int, profile simnet.ORBProfile) *orb.ORB {
	return tb.newORBIDL(i, profile, echoIDL)
}

func (tb *testbed) newORBIDL(i int, profile simnet.ORBProfile, idlSrc string) *orb.ORB {
	repo := idl.NewRepository()
	repo.MustParse(idlSrc)
	o, err := orb.New(orb.Config{
		Transport: orb.VLinkTransport{Linker: tb.linkers[i]},
		Repo:      repo,
		Profile:   profile,
		Runtime:   tb.sim,
		Node:      tb.nodes[i],
		Service:   "giop:" + profile.Name,
	})
	if err != nil {
		panic(err)
	}
	tb.mu.Lock()
	tb.orbs = append(tb.orbs, o)
	tb.mu.Unlock()
	return o
}

// echoServant returns data unchanged (the classic bandwidth workload); sink
// discards it (one-directional streaming).
var echoServant = orb.HandlerMap{
	"echo": func(args []any) ([]any, error) { return []any{args[0]}, nil },
	"sink": func(args []any) ([]any, error) { return []any{}, nil },
}

// mbps converts bytes over a virtual duration to MB/s (decimal, like the
// paper).
func mbps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (float64(d) / 1e9) / 1e6
}

// All runs every experiment and returns the results in paper order.
func All() []Result {
	return []Result{
		Fig7Bandwidth(),
		Latency(),
		Concurrent(),
		Fig8GridCCM(),
		EthernetScaling(),
		PadicoOverhead(),
		CrossParadigm(),
		SecurityZones(),
	}
}
