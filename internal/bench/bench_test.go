package bench

import (
	"strings"
	"testing"
)

// The experiment harness is itself under test: every reproduced number must
// stay within tolerance of the paper's published value, so a regression in
// any layer of the stack (costs, protocols, schedulers) fails CI here.

func checkDeviation(t *testing.T, r Result, tol float64) {
	t.Helper()
	for _, m := range r.Meas {
		if m.Paper == 0 {
			continue
		}
		dev := (m.Value - m.Paper) / m.Paper
		if dev < 0 {
			dev = -dev
		}
		if dev > tol {
			t.Errorf("%s: %s = %.1f %s, paper %.1f (%.0f%% off, tolerance %.0f%%)",
				r.ID, m.Name, m.Value, m.Unit, m.Paper, dev*100, tol*100)
		}
	}
	if len(r.Meas) == 0 {
		t.Errorf("%s produced no measurements", r.ID)
	}
	if !strings.Contains(r.Format(), r.Title) {
		t.Errorf("%s Format misses title", r.ID)
	}
}

func TestFig7WithinTolerance(t *testing.T) {
	r := Fig7Bandwidth()
	checkDeviation(t, r, 0.05)
	// Shape: omniORB ≈ MPI >> ORBacus > Mico at 1 MB.
	peak := map[string]float64{}
	for _, m := range r.Meas {
		if strings.Contains(m.Name, "@ 1MB") {
			peak[m.Name] = m.Value
		}
	}
	omni := peak["omniORB-3.0.2/Myrinet-2000 @ 1MB"]
	mico := peak["Mico-2.3.7/Myrinet-2000 @ 1MB"]
	orbacus := peak["ORBacus-4.0.5/Myrinet-2000 @ 1MB"]
	if !(omni > orbacus && orbacus > mico) {
		t.Errorf("ordering broken: omni %.1f, orbacus %.1f, mico %.1f", omni, orbacus, mico)
	}
	if omni/mico < 3.5 {
		t.Errorf("omniORB/Mico ratio %.1f, paper ≈4.4", omni/mico)
	}
}

func TestLatencyWithinTolerance(t *testing.T) {
	checkDeviation(t, Latency(), 0.06)
}

func TestConcurrentSharing(t *testing.T) {
	checkDeviation(t, Concurrent(), 0.06)
}

func TestFig8WithinTolerance(t *testing.T) {
	checkDeviation(t, Fig8GridCCM(), 0.06)
}

func TestEthernetScalingWithinTolerance(t *testing.T) {
	checkDeviation(t, EthernetScaling(), 0.06)
}

func TestOverheadClaim(t *testing.T) {
	r := PadicoOverhead()
	checkDeviation(t, r, 0.05)
	vals := map[string]float64{}
	for _, m := range r.Meas {
		vals[m.Name] = m.Value
	}
	// "No significant overhead": the arbitrated stack within 5% of raw.
	if raw, stack := vals["raw Madeleine bandwidth"], vals["PadicoTM Circuit bandwidth"]; stack < raw*0.95 {
		t.Errorf("stack bandwidth %.1f vs raw %.1f", stack, raw)
	}
	if raw, stack := vals["raw Madeleine latency"], vals["PadicoTM Circuit latency"]; stack > raw*1.05 {
		t.Errorf("stack latency %.1f vs raw %.1f", stack, raw)
	}
}

func TestCrossParadigmShapes(t *testing.T) {
	r := CrossParadigm()
	vals := map[string]float64{}
	for _, m := range r.Meas {
		vals[m.Name] = m.Value
	}
	if vals["Circuit/myri0 (straight)"] < 10*vals["Circuit/eth0 (cross-paradigm)"] {
		t.Errorf("circuit mapping speeds: %v", vals)
	}
	if vals["VLink/myri0 (cross-paradigm)"] < 10*vals["VLink/eth0 (straight)"] {
		t.Errorf("vlink mapping speeds: %v", vals)
	}
}

func TestSecurityZoneShapes(t *testing.T) {
	r := SecurityZones()
	vals := map[string]float64{}
	for _, m := range r.Meas {
		vals[m.Name] = m.Value
	}
	if vals["SAN auto (secure: clear)"] <= vals["SAN always-encrypt (coarse CORBA policy)"] {
		t.Errorf("SAN encryption not measurable: %v", vals)
	}
	if vals["WAN never (trusted-grid baseline)"] <= vals["WAN auto (insecure: encrypted)"] {
		t.Errorf("WAN encryption not measurable: %v", vals)
	}
}
