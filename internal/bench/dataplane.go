package bench

// This file is the hardware-bound data-plane suite (BENCH_dataplane.json):
// it measures the multiplexed session layer, the pooled framing path and
// the pipelined control plane against a live loopback grid — the artifacts
// that prove one TCP connection per node pair, ~zero dials per resolve and
// an allocation-free framed hot path actually hold on real sockets.

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"padico/internal/gatekeeper"
	"padico/internal/pool"
	"padico/internal/sockets"
)

// frameAllocBaseline is the committed pre-pooling cost of one framed
// encode+decode round (request out, request back in), measured before the
// shared buffer pool landed: 13 allocations per op. The pooled path must
// stay strictly below it — TestFramedAllocBudget turns a regression into a
// CI failure, and the artifact records the live number next to the
// baseline so the margin is visible in review.
const frameAllocBaseline = 13

// frameAllocsPerOp measures the allocation cost of one framed round on the
// pooled encode/decode path: WriteRequest into a reused buffer, ReadRequest
// back out. JSON marshalling itself accounts for the remaining allocations;
// the frame buffers come from the pool.
func frameAllocsPerOp() float64 {
	req := &gatekeeper.Request{Op: gatekeeper.OpPing, Node: "bench", TraceID: "t-bench"}
	var buf bytes.Buffer
	return testing.AllocsPerRun(200, func() {
		buf.Reset()
		if err := gatekeeper.WriteRequest(&buf, req); err != nil {
			panic(err)
		}
		if _, err := gatekeeper.ReadRequest(&buf); err != nil {
			panic(err)
		}
	})
}

// dataplaneBulkBytes is the payload one bulk-throughput round pushes
// through a wall stream before the sink acks.
const dataplaneBulkBytes = 8 << 20

// streamThroughput measures one-way bulk throughput in MB/s over a wall
// stream between two fresh hosts on loopback. With mux enabled the bytes
// ride DATA frames under flow-control credits; disabling it on the
// acceptor forces the legacy one-conn-per-dial path, so the pair of
// numbers bounds the mux framing overhead.
func streamThroughput(mux bool) (float64, error) {
	acceptor := sockets.NewWallHost("bench-sink")
	defer acceptor.Close()
	if !mux {
		acceptor.DisableMux()
	}
	addr, err := acceptor.ListenTCP("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	ln, err := acceptor.Listen("bench:sink")
	if err != nil {
		return 0, err
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c sockets.Conn) {
				defer c.Close()
				// Drain the agreed payload, then ack one byte so the
				// dialer's clock covers full delivery, not just the send.
				if _, err := io.CopyN(io.Discard, c, dataplaneBulkBytes); err != nil {
					return
				}
				_, _ = c.Write([]byte{1})
			}(c)
		}
	}()

	dialer := sockets.NewWallHost("bench-src")
	defer dialer.Close()
	st, err := dialer.DialAddr(addr, "bench:sink")
	if err != nil {
		return 0, err
	}
	defer st.Close()

	chunk := pool.Get(64 << 10)
	defer pool.Put(chunk)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	start := time.Now()
	for sent := 0; sent < dataplaneBulkBytes; sent += len(chunk) {
		if _, err := st.Write(chunk); err != nil {
			return 0, err
		}
	}
	var ack [1]byte
	if _, err := io.ReadFull(st, ack[:]); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	return float64(dataplaneBulkBytes) / 1e6 / elapsed.Seconds(), nil
}

// DataplaneArtifact measures the multiplexed, pooled, pipelined data plane
// end to end on a live loopback grid:
//
//   - rtt_*: control ping round-trips on the pooled mux session (no dial,
//     no connection setup in the measured path);
//   - dials_per_resolve: real TCP dials consumed by uncached by-name
//     resolves — ≈0 when session reuse works;
//   - streams_per_session: logical streams carried per TCP connection;
//   - pipeline_speedup_x: a lockstep burst of control requests vs the same
//     burst written back-to-back on one session;
//   - mux/legacy_stream_mb_s: bulk throughput with and without the mux;
//   - frame_allocs_op: allocations per framed encode+decode round, against
//     the committed pre-pooling baseline.
func DataplaneArtifact() (Artifact, error) {
	a := Artifact{Name: "dataplane", Grid: benchGrid, Iters: observabilityIters,
		Metrics: map[string]float64{}}
	ds, err := benchTrio()
	if err != nil {
		return a, err
	}
	defer func() {
		for _, d := range ds {
			d.Close()
		}
	}()
	dep, err := attachWhenAnnounced(ds[0].Addr(), len(ds))
	if err != nil {
		return a, err
	}
	defer dep.Close()

	// Ping RTT on the pooled session. The first exchange dialed during
	// attach; every measured round reuses the same mux stream's session.
	mean, samples, err := timeOps(observabilityIters, func() error {
		return dep.Ctl.Ping("b0")
	})
	if err != nil {
		return a, fmt.Errorf("bench: mux ping: %w", err)
	}
	a.Metrics["rtt_mean_ns"] = mean
	a.Metrics["rtt_p50_ns"] = percentile(samples, 0.50)
	a.Metrics["rtt_p99_ns"] = percentile(samples, 0.99)

	// Steady-state dial cost of by-name resolution: cache off, so every
	// resolve is a registry round-trip — but each rides the pooled session,
	// so the wall.dials counter (real TCP dials) must stay flat. Hot-load
	// soap first: its soap:sys listener is the canonical dialable service.
	if _, err := dep.Ctl.Load("b2", "soap"); err != nil {
		return a, fmt.Errorf("bench: load soap: %w", err)
	}
	rc := dep.Registry()
	rc.SetCacheTTL(0)
	primed := time.Now().Add(10 * time.Second)
	for {
		if _, err := rc.Resolve("vlink", "soap:sys"); err == nil {
			break
		} else if time.Now().After(primed) {
			return a, fmt.Errorf("bench: priming resolve: %w", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	tel := dep.Telemetry()
	dialsBefore := tel.Counter("wall.dials").Value()
	for i := 0; i < observabilityIters; i++ {
		if _, err := rc.Resolve("vlink", "soap:sys"); err != nil {
			return a, fmt.Errorf("bench: resolve: %w", err)
		}
	}
	dials := tel.Counter("wall.dials").Value() - dialsBefore
	a.Metrics["dials_per_resolve"] = float64(dials) / float64(observabilityIters)

	// Multiplexing ratio: every logical stream the seat opened, over every
	// TCP connection it actually dialed.
	if d := tel.Counter("wall.dials").Value(); d > 0 {
		a.Metrics["streams_per_session"] = float64(tel.Counter("wall.streams").Value()) / float64(d)
	}

	// Control-plane pipelining: a burst of pings issued lockstep (each
	// waiting out its round-trip) vs the same burst written back-to-back on
	// one session and drained in order.
	const burst = 16
	reqs := make([]*gatekeeper.Request, burst)
	for i := range reqs {
		reqs[i] = &gatekeeper.Request{Op: gatekeeper.OpPing}
	}
	lockstep, _, err := timeOps(50, func() error {
		for i := 0; i < burst; i++ {
			if err := dep.Ctl.Ping("b1"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return a, fmt.Errorf("bench: lockstep burst: %w", err)
	}
	pipelined, _, err := timeOps(50, func() error {
		resps, err := dep.Ctl.DoPipelined("b1", reqs)
		if err != nil {
			return err
		}
		for _, r := range resps {
			if err := r.Err(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return a, fmt.Errorf("bench: pipelined burst: %w", err)
	}
	a.Metrics["pipeline_burst"] = burst
	a.Metrics["pipeline_lockstep_ns"] = lockstep
	a.Metrics["pipeline_ns"] = pipelined
	if pipelined > 0 {
		a.Metrics["pipeline_speedup_x"] = lockstep / pipelined
	}

	// Bulk throughput, mux framing vs legacy conn-per-dial.
	muxMBs, err := streamThroughput(true)
	if err != nil {
		return a, fmt.Errorf("bench: mux throughput: %w", err)
	}
	legacyMBs, err := streamThroughput(false)
	if err != nil {
		return a, fmt.Errorf("bench: legacy throughput: %w", err)
	}
	a.Metrics["mux_stream_mb_s"] = muxMBs
	a.Metrics["legacy_stream_mb_s"] = legacyMBs

	a.Metrics["frame_allocs_op"] = frameAllocsPerOp()
	a.Metrics["frame_allocs_baseline"] = frameAllocBaseline
	return a, nil
}
