package bench

import "testing"

// TestFramedAllocBudget is the CI allocation gate on the framed control
// protocol: one encode+decode round must cost strictly fewer allocations
// than the committed pre-pooling baseline. A change that reintroduces
// per-frame buffer churn (dropping the pooled encoder, growing frames on
// the heap) fails here, not in a benchmark nobody reads.
func TestFramedAllocBudget(t *testing.T) {
	got := frameAllocsPerOp()
	if got >= frameAllocBaseline {
		t.Fatalf("framed round costs %.1f allocs/op; pre-pooling baseline was %d — the pooled path regressed",
			got, frameAllocBaseline)
	}
	t.Logf("framed round: %.1f allocs/op (baseline %d)", got, frameAllocBaseline)
}

// TestStreamThroughputSmoke drives the bulk-throughput harness both ways
// — mux framing and legacy conn-per-dial — so the artifact generator's
// measured path stays covered by plain `go test`.
func TestStreamThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP bulk transfer")
	}
	for _, mode := range []struct {
		name string
		mux  bool
	}{{"mux", true}, {"legacy", false}} {
		mbs, err := streamThroughput(mode.mux)
		if err != nil {
			t.Fatalf("%s throughput: %v", mode.name, err)
		}
		if mbs <= 0 {
			t.Fatalf("%s throughput = %.1f MB/s", mode.name, mbs)
		}
		t.Logf("%s: %.0f MB/s", mode.name, mbs)
	}
}
