// Multimiddleware demonstrates PadicoTM's central claim (§4.3.4): several
// middleware systems — CORBA, MPI, SOAP and HLA — cohabit in the same
// Padico processes, are loaded as dynamic modules, and share a single
// exclusive-access Myrinet NIC through the arbitration layer, each carrying
// real traffic in the same virtual instant. The finale is the gatekeeper
// (§4.2): with the workload still running, an operator seated on host0
// hot-loads the SOAP middleware into host1, invokes it, and unloads it
// again — live reconfiguration instead of a respawn.
package main

import (
	"fmt"
	"log"
	"time"

	"padico/internal/core"
	"padico/internal/deploy"
	"padico/internal/gatekeeper"
	"padico/internal/hla"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/soap"
	"padico/internal/vtime"
)

const calcIDL = `
module Multi { interface Calc { double add(in double a, in double b); }; };
`

func main() {
	grid := core.NewGrid()
	nodes := grid.AddNodes("host", 2)
	must(err2(grid.AddMyrinet("myri0", nodes))) // exclusive driver: one owner
	must(err2(grid.AddEthernet("eth0", nodes)))

	grid.Run(func() {
		var procs []*core.Process
		for _, nd := range nodes {
			p, err := grid.Launch(nd)
			must(err)
			p.Repo().MustParse(calcIDL)
			// The middleware mix is loaded dynamically, by name — and the
			// gatekeeper makes the process remotely steerable.
			must(p.Load("corba:" + simnet.OmniORB3.Name))
			must(p.Load("gatekeeper"))
			procs = append(procs, p)
			fmt.Printf("%s modules: %v\n", nd.Name, p.Modules())
		}

		// Name resolution: both hosts carry a registry replica under
		// anti-entropy sync; every process holds a soft-state lease
		// against the replica pair (host0 preferred) and resolves names
		// through it, so services are dialable by name alone and the
		// directory survives losing either host.
		must(procs[0].Load("registry"))
		must(procs[1].Load("registry"))
		replicas := []string{nodes[0].Name, nodes[1].Name}
		for _, p := range procs {
			reg, _ := gatekeeper.RegistryOn(p)
			reg.StartSync(replicas, gatekeeper.DefaultSyncInterval)
		}
		for _, p := range procs {
			gk, _ := gatekeeper.For(p)
			rc := gatekeeper.NewRegistryClient(grid.Sim,
				orb.VLinkTransport{Linker: p.Linker()}, replicas...)
			gk.UseRegistry(rc)
			p.Linker().SetResolver(rc)
			must(gk.StartLease(gatekeeper.DefaultLeaseTTL))
		}

		// 1. CORBA: remote invocation host1 → host0.
		orb0, err := procs[0].ORB(simnet.OmniORB3)
		must(err)
		orb1, err := procs[1].ORB(simnet.OmniORB3)
		must(err)
		ior, err := orb0.Activate("calc", "Multi::Calc", calcServant{})
		must(err)
		ref, err := orb1.Object(ior)
		must(err)
		start := grid.Sim.Now()
		vals, err := ref.Invoke("add", 19.5, 22.5)
		must(err)
		fmt.Printf("CORBA  add(19.5, 22.5) = %v   (%v round trip)\n", vals[0], grid.Sim.Now().Sub(start))

		// 2. MPI: allreduce over the same wire.
		comms := make([]*mpi.Comm, 2)
		wg := vtime.NewWaitGroup(grid.Sim, "mpi")
		for i := 0; i < 2; i++ {
			wg.Add(1)
			grid.Sim.Go("rank", func() {
				defer wg.Done()
				c, err := mpi.Join(grid.Arb, "world", nodes, i)
				must(err)
				comms[i] = c
				out, err := c.Allreduce(mpi.Float64Bytes([]float64{float64(i + 1)}), mpi.SumFloat64)
				must(err)
				if i == 0 {
					fmt.Printf("MPI    allreduce(1, 2)    = %v\n", mpi.BytesFloat64(out)[0])
				}
			})
		}
		must(wg.Wait())
		defer comms[0].Free()
		defer comms[1].Free()

		// 3. SOAP: an XML web service next to the binary protocols.
		srv, err := soap.Serve(procs[0].Linker(), "calc", map[string]soap.Handler{
			"concat": func(p []string) ([]string, error) { return []string{p[0] + p[1]}, nil },
		})
		must(err)
		defer srv.Close()
		start = grid.Sim.Now()
		out, err := soap.NewClient(procs[1].Linker()).Call(nodes[0], "calc", "concat", "grid", "computing")
		must(err)
		fmt.Printf("SOAP   concat             = %q (%v round trip — XML is slow, as §5 notes)\n",
			out[0], grid.Sim.Now().Sub(start))

		// 4. HLA: a federation exchanging timestamped attributes.
		rti, err := hla.StartRTI(procs[0].Linker())
		must(err)
		defer rti.Close()
		pub, err := hla.Join(procs[1].Linker(), nodes[0], "demo-federation", "publisher")
		must(err)
		sub, err := hla.Join(procs[0].Linker(), nodes[0], "demo-federation", "subscriber")
		must(err)
		must(sub.Subscribe("Density"))
		grid.Sim.Sleep(1_000_000)
		must(pub.Publish("Density", 7, []byte{1, 2, 3, 4}))
		u, err := sub.Reflect()
		must(err)
		fmt.Printf("HLA    reflect            = class %s, t=%d, %d bytes\n", u.Class, u.Timestamp, len(u.Data))
		pub.Resign()
		sub.Resign()

		routed, _ := deviceStats(grid)
		fmt.Printf("all four middleware shared one multiplexed Myrinet: %d messages demuxed\n", routed)

		// 5. Gatekeeper: remote steering, mid-run. The operator fans out
		// over the whole deployment, hot-loads the SOAP middleware into
		// host1, invokes the freshly loaded service, and unloads it.
		ctl := gatekeeper.FromProcess(procs[0])
		for _, r := range ctl.Fanout([]string{"host0", "host1"},
			&gatekeeper.Request{Op: gatekeeper.OpListModules}) {
			must(r.Err)
			fmt.Printf("GKPR   %s runs %v\n", r.Node, r.Resp.Modules)
		}
		_, err = ctl.Load("host1", "soap")
		must(err)
		// The hot-load re-announced host1 automatically (module-event
		// hook); give the churn announce an instant to land, then find
		// the fresh service purely by name — no node in sight.
		grid.Sim.Sleep(1_000_000)
		gk0, _ := gatekeeper.For(procs[0])
		e, err := gk0.Registry().Resolve("vlink", "soap:sys")
		must(err)
		fmt.Printf("GKPR   registry resolved soap:sys -> %s (no manual announce)\n", e.Node)
		st, err := procs[0].Linker().DialService("vlink", "soap:sys")
		must(err)
		st.Close()
		out, err = soap.NewClient(procs[0].Linker()).Call(nodes[1], "sys", "modules")
		must(err)
		fmt.Printf("GKPR   hot-loaded soap into host1; sys/modules says %v\n", out)
		stats, err := ctl.Stats("host1")
		must(err)
		for _, d := range stats.Devices {
			fmt.Printf("GKPR   host1 device %s (%s): %d routed, %d pending\n",
				d.Name, d.Kind, d.Routed, d.Pending)
		}
		_, err = ctl.Unload("host1", "soap", false)
		must(err)
		mods, err := ctl.Modules("host1")
		must(err)
		fmt.Printf("GKPR   unloaded soap from host1, back to %v\n", mods)

		// 6. Registry replication: the directory itself survives a
		// replica crash. Let anti-entropy converge, report both replicas,
		// kill the preferred one, and resolve through the survivor.
		grid.Sim.Sleep(gatekeeper.DefaultSyncInterval + time.Millisecond)
		rc0 := gk0.Registry()
		for _, rep := range replicas {
			st, err := rc0.StatusOf(rep)
			must(err)
			fmt.Printf("RGSTRY replica %s holds %d node(s), %d entries\n",
				st.Node, st.Nodes, st.Entries)
		}
		must(procs[0].Unload("registry"))
		rc0.SetCacheTTL(gatekeeper.DefaultResolveCacheTTL) // drop cached routes
		e, err = rc0.Resolve("vlink", gatekeeper.Service)
		must(err)
		fmt.Printf("RGSTRY replica host0 killed; %s still resolves (-> %s) via replica %s\n",
			gatekeeper.Service, e.Node, rc0.RegistryNode())
	})

	// 7. The same control plane, live: two padico-d daemons — genuine
	// wall-clock Padico processes behind real loopback-TCP listeners —
	// and an attached operator seat that constructs no simulated network
	// at all. The steering is identical to part 5; only the clock and the
	// wire are real, and the deployment outlives the controller.
	fmt.Println("LIVE   booting two padico-d daemons on loopback TCP")
	d0, err := deploy.StartDaemon(deploy.DaemonConfig{
		Node: "live0", Registries: []string{"live0"},
		LeaseTTL: time.Second, SyncInterval: 100 * time.Millisecond,
	})
	must(err)
	defer d0.Close()
	d1, err := deploy.StartDaemon(deploy.DaemonConfig{
		Node: "live1", Registries: []string{"live0"},
		Peers:    map[string]string{"live0": d0.Addr()},
		LeaseTTL: time.Second, SyncInterval: 100 * time.Millisecond,
	})
	must(err)
	defer d1.Close()

	att, err := deploy.Attach([]string{d0.Addr()}) // one endpoint reveals the grid
	must(err)
	defer att.Close()
	att.Registry().SetCacheTTL(0)
	for _, r := range att.Ctl.Fanout([]string{"live0", "live1"},
		&gatekeeper.Request{Op: gatekeeper.OpListModules}) {
		must(r.Err)
		fmt.Printf("LIVE   %s runs %v (over real TCP)\n", r.Node, r.Resp.Modules)
	}
	_, err = att.Ctl.Load("live1", "soap")
	must(err)
	// The churn announce publishes soap:sys with live1's real endpoint;
	// wait for it, then dial purely by name through live1's wall gateway.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if entries, err := att.Registry().Lookup("vlink", "soap:sys"); err == nil && len(entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			must(fmt.Errorf("soap:sys never reached the live registry"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := att.DialService("vlink", "soap:sys")
	must(err)
	answer, err := soap.Call(st, "echo", "hello-live-grid")
	st.Close()
	must(err)
	fmt.Printf("LIVE   hot-loaded soap into live1, SOAP echo over the gateway: %v\n", answer)
	d1.Close() // clean shutdown withdraws live1 grid-wide within one sync interval
	fmt.Println("LIVE   daemons down — same commands, simulated or attached")
}

type calcServant struct{}

func (calcServant) Invoke(op string, args []any) ([]any, error) {
	return []any{args[0].(float64) + args[1].(float64)}, nil
}

func deviceStats(grid *core.Grid) (int64, int64) {
	dev, ok := grid.Arb.Device("myri0")
	if !ok {
		return 0, 0
	}
	return dev.Stats()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func err2[T any](_ T, err error) error { return err }
