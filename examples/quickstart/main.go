// Quickstart: the smallest complete Padico program. It builds a simulated
// two-node grid (Myrinet + Ethernet), launches a Padico process per node,
// deploys two CCM components, wires a receptacle to a facet through the
// deployment machinery, and makes one remote invocation — which travels
// over the Myrinet SAN via the cross-paradigm VLink mapping without the
// code ever mentioning a network.
package main

import (
	"fmt"
	"log"

	"padico/internal/ccm"
	"padico/internal/core"
	"padico/internal/orb"
	"padico/internal/simnet"
)

const greeterIDL = `
module Quick {
    interface Greeter { string greet(in string whom); };
};
`

// greeterComp provides facet "svc".
type greeterComp struct{ ccm.Base }

func (greeterComp) Facet(string) orb.Servant {
	return orb.HandlerMap{
		"greet": func(args []any) ([]any, error) {
			return []any{"hello, " + args[0].(string) + "!"}, nil
		},
	}
}

// callerComp has receptacle "out".
type callerComp struct {
	ccm.Base
	out *orb.ObjRef
}

func (c *callerComp) Connect(_ string, ref *orb.ObjRef) error { c.out = ref; return nil }

func main() {
	grid := core.NewGrid()
	nodes := grid.AddNodes("node", 2)
	must(err2(grid.AddMyrinet("myri0", nodes)))
	must(err2(grid.AddEthernet("eth0", nodes)))

	grid.Run(func() {
		// One Padico process and one container per node.
		containers := map[string]*ccm.Container{}
		for _, nd := range nodes {
			p, err := grid.Launch(nd)
			must(err)
			p.Repo().MustParse(greeterIDL)
			o, err := p.ORB(simnet.OmniORB3)
			must(err)
			c, err := ccm.NewContainer(o, "c@"+nd.Name)
			must(err)
			containers[nd.Name] = c
		}
		must(containers["node0"].Install(&ccm.Class{
			Name:   "GreeterComp",
			Facets: map[string]string{"svc": "Quick::Greeter"},
			New:    func() ccm.Impl { return &greeterComp{} },
		}))
		must(containers["node1"].Install(&ccm.Class{
			Name:        "CallerComp",
			Receptacles: map[string]string{"out": "Quick::Greeter"},
			New:         func() ccm.Impl { return &callerComp{} },
		}))

		// Deploy the two-instance assembly from node1.
		asm, err := ccm.ParseAssembly([]byte(`
			<assembly name="quick">
			  <instance id="greeter" component="GreeterComp" host="node0"/>
			  <instance id="caller"  component="CallerComp"  host="node1"/>
			  <connection kind="facet">
			    <from instance="caller" port="out"/>
			    <to instance="greeter" port="svc"/>
			  </connection>
			</assembly>`))
		must(err)
		proc, _ := grid.Process("node1")
		o, err := proc.ORB(simnet.OmniORB3)
		must(err)
		_, err = ccm.NewDeployer(o).Execute(asm)
		must(err)

		// The caller's receptacle now reaches the remote component.
		caller, _ := containers["node1"].Instance("caller")
		impl := caller.Impl().(*callerComp)
		start := grid.Sim.Now()
		vals, err := impl.out.Invoke("greet", "grid")
		must(err)
		fmt.Printf("reply: %q\n", vals[0])
		fmt.Printf("round trip over the simulated Myrinet: %v of virtual time\n",
			grid.Sim.Now().Sub(start))
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func err2[T any](_ T, err error) error { return err }
