// Codecoupling reproduces the paper's §2 motivating application: a
// chemistry code coupled with a transport code, both parallel, exchanging a
// density field every step (Figure 1). The chemistry component runs SPMD
// on 2 nodes, the transport component on 4: GridCCM redistributes the
// block-distributed field 2→4 on every invocation, with every node of both
// codes taking part in the communication (Figure 3 — no master
// bottleneck), while the transport code internally uses MPI collectives.
package main

import (
	"fmt"
	"log"
	"math"

	"padico/internal/core"
	"padico/internal/gridccm"
	"padico/internal/mpi"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/vtime"
)

const couplingIDL = `
module Coupling {
    typedef sequence<double> Field;
    interface Transport {
        void setDensity(in Field density, in double dt);
    };
};
`

const parallelXML = `
<parallel component="TransportComp">
  <port name="sim">
    <operation name="setDensity">
      <argument name="density" distribution="block"/>
      <argument name="dt" distribution="replicated"/>
    </operation>
  </port>
</parallel>`

const (
	nChem  = 2 // chemistry members
	nTrans = 4 // transport members
	field  = 1 << 16
	steps  = 3
)

// transportMember is one SPMD member of the transport code: it receives
// its block of the density field, diffuses it locally, and uses MPI to
// agree on the global maximum (a real collective inside the op).
type transportMember struct {
	rank int
	comm *mpi.Comm
	last float64
}

func (tm *transportMember) Invoke(op string, args []any) ([]any, error) {
	block := args[0].([]float64)
	dt := args[1].(float64)
	// Local explicit diffusion step.
	localMax := 0.0
	for i := range block {
		block[i] *= 1 - dt
		if block[i] > localMax {
			localMax = block[i]
		}
	}
	// Global max via Allreduce across the transport members.
	out, err := tm.comm.Allreduce(mpi.Float64Bytes([]float64{localMax}), mpi.MaxFloat64)
	if err != nil {
		return nil, err
	}
	tm.last = mpi.BytesFloat64(out)[0]
	return []any{}, nil
}

func main() {
	grid := core.NewGrid()
	chemNodes := grid.AddNodes("chem", nChem)
	transNodes := grid.AddNodes("trans", nTrans)
	all := append(append([]*simnet.Node{}, chemNodes...), transNodes...)
	if _, err := grid.AddMyrinet("myri0", all); err != nil {
		log.Fatal(err)
	}

	desc, err := gridccm.ParseParallelDesc([]byte(parallelXML))
	must(err)
	port, _ := desc.Port("sim")

	grid.Run(func() {
		mkORB := func(nd *simnet.Node) *orb.ORB {
			p, err := grid.Launch(nd)
			must(err)
			p.Repo().MustParse(couplingIDL)
			o, err := p.ORB(simnet.Mico) // the paper's preliminary GridCCM uses MicoCCM
			must(err)
			return o
		}

		// Serve the parallel transport component on its 4 nodes.
		members := make([]*transportMember, nTrans)
		servedCh := make(chan *gridccm.ServedParallel, nTrans)
		wg := vtime.NewWaitGroup(grid.Sim, "serve")
		for r := 0; r < nTrans; r++ {
			wg.Add(1)
			grid.Sim.Go("transport-member", func() {
				defer wg.Done()
				comm, err := mpi.Join(grid.Arb, "transport", transNodes, r)
				must(err)
				members[r] = &transportMember{rank: r, comm: comm}
				served, err := gridccm.Serve(gridccm.Member{
					ORB: mkORB(transNodes[r]), Comm: comm, Rank: r, Size: nTrans, Node: transNodes[r],
				}, "transport", "Coupling::Transport", port, members[r])
				must(err)
				servedCh <- served
			})
		}
		must(wg.Wait())
		served := <-servedCh

		// The chemistry code: 2 SPMD members, each owning half the field.
		fmt.Printf("coupling %d chemistry nodes to %d transport nodes, field of %d doubles\n",
			nChem, nTrans, field)
		wg2 := vtime.NewWaitGroup(grid.Sim, "chem")
		for r := 0; r < nChem; r++ {
			wg2.Add(1)
			grid.Sim.Go("chemistry-member", func() {
				defer wg2.Done()
				comm, err := mpi.Join(grid.Arb, "chemistry", chemNodes, r)
				must(err)
				ref, err := gridccm.Bind(gridccm.Member{
					ORB: mkORB(chemNodes[r]), Comm: comm, Rank: r, Size: nChem, Node: chemNodes[r],
				}, "chemistry", "Coupling::Transport", port, served.Derived)
				must(err)
				// My half of the field: a smooth bump.
				half := field / nChem
				local := make([]float64, half)
				for i := range local {
					x := float64(r*half+i) / field
					local[i] = math.Sin(math.Pi * x)
				}
				for step := 0; step < steps; step++ {
					start := grid.Sim.Now()
					err := ref.Invoke("setDensity",
						gridccm.Distributed{Total: field, Chunk: local}, 0.1)
					must(err)
					if r == 0 {
						fmt.Printf("  step %d: coupled exchange took %v of virtual time\n",
							step, grid.Sim.Now().Sub(start))
					}
				}
			})
		}
		must(wg2.Wait())
		for r, tm := range members {
			fmt.Printf("  transport member %d: global max density after %d steps = %.4f\n",
				r, steps, tm.last)
		}
		flows, bytes := grid.Net.Stats()
		fmt.Printf("grid carried %d messages, %.1f MB total\n", flows, float64(bytes)/1e6)
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
