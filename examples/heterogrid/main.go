// Heterogrid demonstrates the paper's §2 "communication flexibility"
// scenario: the same two coupled components are deployed twice, once on a
// single parallel machine (both codes share a Myrinet SAN) and once on two
// clusters joined by an insecure WAN. Nothing in the application changes —
// the abstraction layer picks the best network, and the security policy
// encrypts exactly the WAN traffic (§6's proposed optimization leaves
// intra-SAN traffic in clear).
package main

import (
	"fmt"
	"log"
	"time"

	"padico/internal/core"
	walldeploy "padico/internal/deploy"
	"padico/internal/gatekeeper"
	"padico/internal/orb"
	"padico/internal/simnet"
	"padico/internal/sockets"
	"padico/internal/vlink"
)

const fieldIDL = `
module Hetero {
    typedef sequence<octet> Bytes;
    interface Sink { void put(in Bytes data); };
};
`

const payload = 1 << 20

type sinkServant struct{}

func (sinkServant) Invoke(op string, args []any) ([]any, error) { return []any{}, nil }

// deploy runs the coupling on a prepared grid and reports the transfer time.
// The producer never learns where the sink runs: the consumer publishes a
// probe service to the grid registry and the producer dials it purely by
// name — the same code resolves to a Myrinet neighbour in one deployment
// and to a machine across the WAN in the other.
func deploy(label string, grid *core.Grid, producer, consumer *simnet.Node) {
	grid.Run(func() {
		var orbs []*orb.ORB
		var procs []*core.Process
		for _, nd := range []*simnet.Node{producer, consumer} {
			p, err := grid.Launch(nd)
			must(err)
			p.Repo().MustParse(fieldIDL)
			p.Linker().Mode = vlink.SecureAuto // encrypt insecure paths only
			o, err := p.ORB(simnet.OmniORB3)
			must(err)
			must(p.Load("gatekeeper"))
			orbs = append(orbs, o)
			procs = append(procs, p)
		}
		// A registry replica on each machine, reconciling through
		// anti-entropy; both processes lease and resolve against the
		// replica pair (producer's replica preferred), so the directory
		// itself has no single point of failure.
		must(procs[0].Load("registry"))
		must(procs[1].Load("registry"))
		replicas := []string{producer.Name, consumer.Name}
		for _, nd := range replicas {
			p, _ := grid.Process(nd)
			reg, _ := gatekeeper.RegistryOn(p)
			reg.StartSync(replicas, gatekeeper.DefaultSyncInterval)
		}
		for _, p := range procs {
			gk, _ := gatekeeper.For(p)
			rc := gatekeeper.NewRegistryClient(grid.Sim,
				orb.VLinkTransport{Linker: p.Linker()}, replicas...)
			gk.UseRegistry(rc)
			p.Linker().SetResolver(rc)
			must(gk.StartLease(gatekeeper.DefaultLeaseTTL))
		}
		// The consumer serves a probe; announcing refreshes its entries.
		probe, err := procs[1].Linker().Listen("hetero:probe")
		must(err)
		grid.Sim.Go("probe", func() {
			for {
				st, err := probe.Accept()
				if err != nil {
					return
				}
				buf := make([]byte, 8)
				if err := sockets.ReadFull(st, buf); err == nil {
					_, _ = st.Write(buf)
				}
				st.Close()
			}
		})
		gk1, _ := gatekeeper.For(procs[1])
		must(gk1.Announce())
		st, err := procs[0].Linker().DialService("vlink", "hetero:probe")
		must(err)
		if _, err := st.Write(make([]byte, 8)); err != nil {
			must(err)
		}
		must(sockets.ReadFull(st, make([]byte, 8)))
		st.Close()
		fmt.Printf("  found the sink by name: hetero:probe -> %s\n", consumer.Name)

		ior, err := orbs[1].Activate("sink", "Hetero::Sink", sinkServant{})
		must(err)
		ref, err := orbs[0].Object(ior)
		must(err)
		if _, err := ref.Invoke("put", make([]byte, 64)); err != nil { // warm
			must(err)
		}
		start := grid.Sim.Now()
		_, err = ref.Invoke("put", make([]byte, payload))
		must(err)
		elapsed := grid.Sim.Now().Sub(start)
		fmt.Printf("%-34s %8.2f ms for 1 MB  (≈%5.1f MB/s)\n",
			label, float64(elapsed)/float64(time.Millisecond),
			payload/(float64(elapsed)/1e9)/1e6)

		// Finale: the directory survives losing a replica. Give
		// anti-entropy one interval to copy the probe entry to the
		// consumer-side replica, kill the producer-side replica the
		// producer prefers, and resolve again — the same name now answers
		// from the surviving replica.
		gk0, _ := gatekeeper.For(procs[0])
		rc0 := gk0.Registry()
		e, err := rc0.Resolve("vlink", "hetero:probe")
		must(err)
		fmt.Printf("  before replica crash: hetero:probe -> %s (replica %s)\n",
			e.Node, rc0.RegistryNode())
		grid.Sim.Sleep(gatekeeper.DefaultSyncInterval + time.Millisecond)
		must(procs[0].Unload("registry"))
		rc0.SetCacheTTL(gatekeeper.DefaultResolveCacheTTL) // drop cached resolutions
		e, err = rc0.Resolve("vlink", "hetero:probe")
		must(err)
		fmt.Printf("  after  replica crash: hetero:probe -> %s (replica %s survived)\n",
			e.Node, rc0.RegistryNode())
	})
}

func main() {
	fmt.Println("same components, two deployments (§2 'communication flexibility'):")

	// Deployment 1: one parallel machine large enough for both codes.
	{
		grid := core.NewGrid()
		nodes := grid.AddNodes("pm", 2)
		must(err2(grid.AddMyrinet("myri0", nodes)))
		deploy("one parallel machine (Myrinet):", grid, nodes[0], nodes[1])
	}

	// Deployment 2: two clusters joined by an insecure 5 MB/s WAN.
	{
		grid := core.NewGrid()
		a := grid.AddNodes("siteA-", 1)
		b := grid.AddNodes("siteB-", 1)
		both := append(append([]*simnet.Node{}, a...), b...)
		must(err2(grid.AddWAN("wan0", both, 5e6, 10*time.Millisecond)))
		deploy("two sites over insecure WAN:", grid, a[0], b[0])
	}

	// Deployment 2b: the same WAN with the coarse always-encrypt policy
	// the paper criticizes — even this secure-enough link pays crypto.
	{
		grid := core.NewGrid()
		nodes := grid.AddNodes("pm", 2)
		must(err2(grid.AddMyrinet("myri0", nodes)))
		grid.Run(func() {
			var orbs []*orb.ORB
			for _, nd := range nodes {
				p, err := grid.Launch(nd)
				must(err)
				p.Repo().MustParse(fieldIDL)
				p.Linker().Mode = vlink.SecureAlways
				o, err := p.ORB(simnet.OmniORB3)
				must(err)
				orbs = append(orbs, o)
			}
			ior, err := orbs[1].Activate("sink", "Hetero::Sink", sinkServant{})
			must(err)
			ref, err := orbs[0].Object(ior)
			must(err)
			_, _ = ref.Invoke("put", make([]byte, 64))
			start := grid.Sim.Now()
			_, err = ref.Invoke("put", make([]byte, payload))
			must(err)
			elapsed := grid.Sim.Now().Sub(start)
			fmt.Printf("%-34s %8.2f ms for 1 MB  (≈%5.1f MB/s)\n",
				"SAN with coarse always-encrypt:",
				float64(elapsed)/float64(time.Millisecond),
				payload/(float64(elapsed)/1e9)/1e6)
		})
	}
	fmt.Println("the application code was identical in all three deployments.")

	// Deployment 3: the same find-the-sink-by-name, live. Two padico-d
	// daemons — separate wall-clock Padico processes behind real
	// loopback-TCP listeners — host the probe as an ordinary application
	// module; an attached seat resolves it through the replicated
	// registry (whose entries advertise each daemon's real endpoint) and
	// dials it through the owning daemon's gateway. The producer-side
	// code still never learns where the sink runs.
	core.RegisterModuleType("hetero:probe", func() core.Module {
		return &core.FuncModule{ModName: "hetero:probe", Deps: []string{"vlink"},
			OnInit: func(p *core.Process) error {
				probe, err := p.Linker().Listen("hetero:probe")
				if err != nil {
					return err
				}
				p.Runtime().Go("probe", func() {
					for {
						st, err := probe.Accept()
						if err != nil {
							return
						}
						buf := make([]byte, 8)
						if err := sockets.ReadFull(st, buf); err == nil {
							_, _ = st.Write(buf)
						}
						st.Close()
					}
				})
				return nil
			}}
	})
	d0, err := walldeploy.StartDaemon(walldeploy.DaemonConfig{
		Node: "siteA-live", Zone: "siteA", Registries: []string{"siteA-live"},
		LeaseTTL: time.Second, SyncInterval: 100 * time.Millisecond,
	})
	must(err)
	defer d0.Close()
	d1, err := walldeploy.StartDaemon(walldeploy.DaemonConfig{
		Node: "siteB-live", Zone: "siteB", Registries: []string{"siteA-live"},
		Peers:    map[string]string{"siteA-live": d0.Addr()},
		Modules:  []string{"hetero:probe"}, // the sink, loaded at boot
		LeaseTTL: time.Second, SyncInterval: 100 * time.Millisecond,
	})
	must(err)
	defer d1.Close()
	att, err := walldeploy.Attach([]string{d0.Addr()})
	must(err)
	defer att.Close()
	att.Registry().SetCacheTTL(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if entries, err := att.Registry().Lookup("vlink", "hetero:probe"); err == nil && len(entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			must(fmt.Errorf("hetero:probe never reached the live registry"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := att.DialService("vlink", "hetero:probe")
	must(err)
	if _, err := st.Write(make([]byte, 8)); err != nil {
		must(err)
	}
	must(sockets.ReadFull(st, make([]byte, 8)))
	st.Close()
	fmt.Println("live wall-clock deployment:        found the sink by name over real TCP (-> siteB-live)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func err2[T any](_ T, err error) error { return err }
