// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4.4). Each benchmark runs the corresponding experiment from
// internal/bench on the calibrated simulated testbed and reports the key
// measured values as benchmark metrics, next to the paper's numbers
// (recorded in EXPERIMENTS.md).
//
// Durations here are *virtual* time: the middleware stack really executes,
// but the clock is the deterministic simulator's, so results are stable
// across machines.
package padico_test

import (
	"strings"
	"testing"

	"padico/internal/bench"
)

// report attaches an experiment's measurements as benchmark metrics.
func report(b *testing.B, r bench.Result, keys ...string) {
	b.Helper()
	for _, m := range r.Meas {
		for _, k := range keys {
			if strings.Contains(m.Name, k) {
				name := strings.NewReplacer(" ", "_", "/", "_").Replace(m.Name)
				b.ReportMetric(m.Value, name+"_"+m.Unit)
			}
		}
	}
	if dev := r.Deviation(); dev > 0 {
		b.ReportMetric(dev*100, "max_paper_deviation_%")
	}
}

// BenchmarkFig7_Bandwidth regenerates Figure 7: CORBA and MPI bandwidth on
// PadicoTM over Myrinet-2000 plus the TCP/Ethernet-100 reference.
func BenchmarkFig7_Bandwidth(b *testing.B) {
	var r bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.Fig7Bandwidth()
	}
	report(b, r, "@ 1MB")
}

// BenchmarkLatency regenerates §4.4's latency numbers (MPI 11 µs, omniORB
// 20 µs, Mico 62 µs, ORBacus 54 µs).
func BenchmarkLatency(b *testing.B) {
	var r bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.Latency()
	}
	report(b, r, "")
}

// BenchmarkFig7Concurrent regenerates the concurrent-sharing claim: CORBA
// and MPI each obtain ~120 MB/s of one Myrinet wire.
func BenchmarkFig7Concurrent(b *testing.B) {
	var r bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.Concurrent()
	}
	report(b, r, "sharing")
}

// BenchmarkFig8_NxN regenerates Figure 8: GridCCM latency and aggregate
// bandwidth between two parallel components for 1/2/4/8 nodes a side.
func BenchmarkFig8_NxN(b *testing.B) {
	var r bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.Fig8GridCCM()
	}
	report(b, r, "latency", "aggregate")
}

// BenchmarkEthernetScaling regenerates §4.4's Fast-Ethernet scaling (Mico
// 9.8→78.4 MB/s, OpenCCM/Java 8.3→66.4 MB/s).
func BenchmarkEthernetScaling(b *testing.B) {
	var r bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.EthernetScaling()
	}
	report(b, r, "1 to 1", "8 to 8")
}

// BenchmarkPadicoOverhead regenerates the ablation behind "PadicoTM adds no
// significant overhead" vs raw Madeleine.
func BenchmarkPadicoOverhead(b *testing.B) {
	var r bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.PadicoOverhead()
	}
	report(b, r, "latency", "bandwidth")
}

// BenchmarkCrossParadigm measures the §4.3.2 mappings: Circuit and VLink,
// straight and cross-paradigm.
func BenchmarkCrossParadigm(b *testing.B) {
	var r bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.CrossParadigm()
	}
	report(b, r, "Circuit", "VLink")
}

// BenchmarkSecurityZones measures the §2/§6 security-zone policies.
func BenchmarkSecurityZones(b *testing.B) {
	var r bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.SecurityZones()
	}
	report(b, r, "SAN", "WAN")
}
